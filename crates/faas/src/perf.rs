//! The Lambda performance law: how memory configuration maps to duration.
//!
//! AWS allocates CPU share proportionally to memory, reaching one full
//! vCPU at 1,792 MB; beyond that a single-threaded inference gains almost
//! nothing (the paper's Table 2: 2048 MB → 6.38 s, 3008 MB → 6.32 s). Near
//! the low end, runtimes whose resident footprint approaches the memory
//! block slow down sharply and eventually cannot run at all (the paper:
//! 128 MB "cannot complete before the timeout", so Fig. 1 starts at 256).
//!
//! All constants live in [`PerfModel`] and are calibrated once against the
//! paper's own measurements (see `DESIGN.md` §5); the tests below pin the
//! *shape* facts the evaluation depends on, not absolute numbers.

/// Calibration constants for the lambda performance model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfModel {
    /// Memory at which the function owns one full vCPU (AWS: 1,792 MB).
    pub full_share_mb: f64,
    /// Framework-import CPU work at full share, seconds (trimmed
    /// TF/Keras dependency layers, paper §2.1).
    pub import_cpu_s: f64,
    /// Weight-file deserialize throughput at full share, MB/s.
    pub load_bw_mbps: f64,
    /// Effective inference throughput at full share, FLOP/s.
    pub flops_per_s: f64,
    /// Fixed per-invocation overhead (trigger + response), seconds.
    pub fixed_overhead_s: f64,
    /// Cold-start sandbox creation, seconds.
    pub cold_start_s: f64,
    /// Package/layer fetch bandwidth on cold start, MB/s.
    pub package_fetch_mbps: f64,
    /// Memory-pressure slowdown coefficient (dimensionless).
    pub pressure_coef: f64,
    /// Resident runtime + dependencies footprint, MB (imported TF/Keras).
    pub runtime_footprint_mb: f64,
    /// Below `oom_fraction × footprint` the function cannot run at all.
    pub oom_fraction: f64,
    /// Lambda ↔ S3 bandwidth, MB/s (the paper's `B`).
    pub s3_bandwidth_mbps: f64,
    /// Per-request S3 latency, seconds.
    pub s3_latency_s: f64,
    /// Model upload bandwidth during job deployment, MB/s.
    pub deploy_upload_mbps: f64,
    /// Fixed per-function deployment overhead, seconds.
    pub deploy_fixed_s: f64,
}

impl Default for PerfModel {
    fn default() -> Self {
        PerfModel {
            full_share_mb: 1792.0,
            import_cpu_s: 0.8,
            load_bw_mbps: 20.0,
            flops_per_s: 1.5e9,
            fixed_overhead_s: 0.6,
            cold_start_s: 0.3,
            package_fetch_mbps: 100.0,
            pressure_coef: 4.0,
            runtime_footprint_mb: 500.0,
            oom_fraction: 0.35,
            s3_bandwidth_mbps: 80.0,
            s3_latency_s: 0.02,
            deploy_upload_mbps: 40.0,
            deploy_fixed_s: 0.5,
        }
    }
}

/// Per-invocation duration breakdown computed by [`LambdaPerf`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DurationBreakdown {
    /// Cold-start sandbox + package fetch (zero on warm starts).
    pub cold_s: f64,
    /// Framework import (zero on warm starts).
    pub import_s: f64,
    /// Model/weights load.
    pub load_s: f64,
    /// Layer compute.
    pub compute_s: f64,
    /// Storage transfers (reads + writes).
    pub transfer_s: f64,
    /// Fixed trigger/response overhead.
    pub fixed_s: f64,
}

impl DurationBreakdown {
    /// Total duration.
    pub fn total(&self) -> f64 {
        self.cold_s + self.import_s + self.load_s + self.compute_s + self.transfer_s + self.fixed_s
    }
}

/// The performance law bound to a concrete memory size.
#[derive(Debug, Clone, Copy)]
pub struct LambdaPerf<'a> {
    model: &'a PerfModel,
    memory_mb: u32,
}

impl<'a> LambdaPerf<'a> {
    /// Binds the model to a memory block.
    pub fn new(model: &'a PerfModel, memory_mb: u32) -> Self {
        LambdaPerf { model, memory_mb }
    }

    /// Fraction of a vCPU owned at this memory size, in (0, 1].
    pub fn cpu_share(&self) -> f64 {
        (f64::from(self.memory_mb) / self.model.full_share_mb).min(1.0)
    }

    /// Memory-pressure slowdown multiplier (≥ 1) for a given total
    /// resident footprint.
    pub fn pressure(&self, footprint_mb: f64) -> f64 {
        let ratio = footprint_mb / f64::from(self.memory_mb);
        1.0 + self.model.pressure_coef * (ratio - 1.0).max(0.0)
    }

    /// True when the footprint cannot run at all at this memory size (the
    /// paper's 128 MB timeout case).
    pub fn is_oom(&self, footprint_mb: f64) -> bool {
        f64::from(self.memory_mb) < self.model.oom_fraction * footprint_mb
    }

    /// Seconds to execute `cpu_seconds_at_full_share` of CPU-bound work,
    /// given the resident footprint.
    pub fn cpu_time(&self, cpu_seconds_at_full_share: f64, footprint_mb: f64) -> f64 {
        cpu_seconds_at_full_share * self.pressure(footprint_mb) / self.cpu_share()
    }

    /// Full-share CPU seconds to import the framework.
    pub fn import_work(&self) -> f64 {
        self.model.import_cpu_s
    }

    /// Full-share CPU seconds to deserialize `bytes` of weights.
    pub fn load_work(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.model.load_bw_mbps * 1e6)
    }

    /// Full-share CPU seconds to execute `flops`.
    pub fn compute_work(&self, flops: u64) -> f64 {
        flops as f64 / self.model.flops_per_s
    }

    /// Seconds to move `bytes` to/from storage, including per-request
    /// latency for `requests` requests — the paper's `r = (p_prev+p_out)/B`.
    pub fn transfer_time(&self, bytes: u64, requests: u32) -> f64 {
        bytes as f64 / (self.model.s3_bandwidth_mbps * 1e6)
            + f64::from(requests) * self.model.s3_latency_s
    }

    /// Cold-start duration for a package of `package_bytes`.
    pub fn cold_start(&self, package_bytes: u64) -> f64 {
        self.model.cold_start_s + package_bytes as f64 / (self.model.package_fetch_mbps * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// MobileNet-like single-lambda invocation: the Table 2 scenario.
    fn mobilenet_duration(model: &PerfModel, mem: u32) -> Option<f64> {
        let perf = LambdaPerf::new(model, mem);
        let weights: u64 = 17 * 1024 * 1024;
        let flops: u64 = 1_140_000_000;
        let footprint = model.runtime_footprint_mb + 2.0 * 17.0;
        if perf.is_oom(footprint) {
            return None;
        }
        let cpu = perf.import_work() + perf.load_work(weights) + perf.compute_work(flops);
        Some(perf.cold_start(weights) + perf.cpu_time(cpu, footprint) + model.fixed_overhead_s)
    }

    #[test]
    fn cpu_share_saturates_at_1792() {
        let m = PerfModel::default();
        assert!(LambdaPerf::new(&m, 1792).cpu_share() >= 1.0 - 1e-12);
        assert_eq!(LambdaPerf::new(&m, 3008).cpu_share(), 1.0);
        assert!((LambdaPerf::new(&m, 896).cpu_share() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn time_monotone_decreasing_then_flat() {
        // The Table 2 / Fig. 1 shape: strictly better up to 1792, then flat.
        let m = PerfModel::default();
        let t512 = mobilenet_duration(&m, 512).unwrap();
        let t1024 = mobilenet_duration(&m, 1024).unwrap();
        let t1536 = mobilenet_duration(&m, 1536).unwrap();
        let t2048 = mobilenet_duration(&m, 2048).unwrap();
        let t3008 = mobilenet_duration(&m, 3008).unwrap();
        assert!(t512 > t1024 && t1024 > t1536 && t1536 > t2048);
        assert!(
            (t2048 - t3008).abs() < 0.05,
            "saturation: {t2048} vs {t3008}"
        );
        // Roughly 2× between 512 and 1024, as in Table 2 (22.03 → 10.65).
        let ratio = t512 / t1024;
        assert!(ratio > 1.7 && ratio < 2.4, "ratio {ratio}");
    }

    #[test]
    fn oom_at_128mb_as_in_paper() {
        // Fig. 1 starts at 256 MB because 128 MB cannot finish.
        let m = PerfModel::default();
        assert!(mobilenet_duration(&m, 128).is_none());
        assert!(mobilenet_duration(&m, 256).is_some());
    }

    #[test]
    fn cost_minimum_strictly_inside_grid() {
        // Table 2: cost dips at 1024 MB — cheaper than both 512 and 1536+.
        let m = PerfModel::default();
        let sheet = crate::pricing::PriceSheet::aws_2020();
        let cost = |mem: u32| sheet.lambda_compute_cost(mobilenet_duration(&m, mem).unwrap(), mem);
        let c512 = cost(512);
        let c1024 = cost(1024);
        let c2048 = cost(2048);
        let c3008 = cost(3008);
        assert!(
            c1024 < c512,
            "pressure should make 512 pricier: {c512} vs {c1024}"
        );
        assert!(c1024 < c2048 && c2048 < c3008);
    }

    #[test]
    fn pressure_grows_below_footprint() {
        let m = PerfModel::default();
        let p = LambdaPerf::new(&m, 256);
        assert!(p.pressure(500.0) > 2.0);
        assert!((LambdaPerf::new(&m, 1024).pressure(500.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_time_matches_paper_formula() {
        // r = (p_prev + p_out)/B plus request latency.
        let m = PerfModel::default();
        let p = LambdaPerf::new(&m, 1024);
        let t = p.transfer_time(80_000_000, 2);
        assert!((t - (1.0 + 0.04)).abs() < 1e-9);
    }

    #[test]
    fn breakdown_totals() {
        let b = DurationBreakdown {
            cold_s: 0.3,
            import_s: 1.0,
            load_s: 0.5,
            compute_s: 0.7,
            transfer_s: 0.1,
            fixed_s: 0.6,
        };
        assert!((b.total() - 3.2).abs() < 1e-12);
    }
}
