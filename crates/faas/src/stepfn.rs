//! Step-Functions-style workflow orchestration.
//!
//! The paper measured AWS Step Functions and rejected them for AMPS-Inf:
//! "the state transitions take nearly 15s which would cost more and lead
//! to a larger completion time" (footnote 2). SerFer, the compared
//! system, *does* orchestrate its lambda chain this way — so the
//! comparator needs a real workflow substrate, not a constant.

use crate::platform::{InvocationWork, InvokeError, Platform};
use crate::FunctionId;

/// Default state-transition latency (paper footnote 2: "nearly 15 s").
pub const DEFAULT_TRANSITION_LATENCY_S: f64 = 15.0;
/// AWS Standard Workflows price per state transition ($0.025 / 1,000).
pub const DEFAULT_TRANSITION_COST: f64 = 0.000_025;

/// One Task state: a function invocation with its work description.
#[derive(Debug, Clone)]
pub struct StepState {
    /// State name (shows up in execution traces).
    pub name: String,
    /// The lambda this state invokes.
    pub function: FunctionId,
    /// The invocation's work.
    pub work: InvocationWork,
}

/// A sequential state machine over deployed lambdas.
#[derive(Debug, Clone)]
pub struct StepFunction {
    /// Workflow name.
    pub name: String,
    /// Task states in execution order.
    pub states: Vec<StepState>,
    /// Latency per state transition.
    pub transition_latency_s: f64,
    /// Fee per state transition.
    pub transition_cost: f64,
}

/// Trace of one workflow execution.
#[derive(Debug, Clone)]
pub struct StepExecution {
    /// When the workflow finished.
    pub end: f64,
    /// Dollars: transitions + the invocations' direct costs.
    pub dollars: f64,
    /// State transitions performed (enter + between states + exit).
    pub transitions: usize,
    /// Seconds spent purely in transitions.
    pub transition_time_s: f64,
    /// Per-state completion times.
    pub state_ends: Vec<f64>,
}

impl StepFunction {
    /// A standard-workflow machine over the given states.
    pub fn standard(name: impl Into<String>, states: Vec<StepState>) -> Self {
        StepFunction {
            name: name.into(),
            states,
            transition_latency_s: DEFAULT_TRANSITION_LATENCY_S,
            transition_cost: DEFAULT_TRANSITION_COST,
        }
    }

    /// Total transitions for one execution: workflow entry, one between
    /// each consecutive state pair, and workflow exit.
    pub fn num_transitions(&self) -> usize {
        self.states.len() + 1
    }

    /// Executes the machine starting at `t0`.
    pub fn execute(&self, platform: &mut Platform, t0: f64) -> Result<StepExecution, InvokeError> {
        let mut now = t0;
        let mut dollars = 0.0;
        let mut transition_time = 0.0;
        let mut state_ends = Vec::with_capacity(self.states.len());
        // Workflow entry transition.
        now += self.transition_latency_s;
        transition_time += self.transition_latency_s;
        dollars += self.transition_cost;
        for (i, state) in self.states.iter().enumerate() {
            if i > 0 {
                now += self.transition_latency_s;
                transition_time += self.transition_latency_s;
                dollars += self.transition_cost;
            }
            let out = platform.invoke(state.function, now, &state.work)?;
            now = out.end;
            dollars += out.dollars;
            state_ends.push(now);
        }
        // Workflow exit transition.
        now += self.transition_latency_s;
        transition_time += self.transition_latency_s;
        dollars += self.transition_cost;
        Ok(StepExecution {
            end: now,
            dollars,
            transitions: self.num_transitions(),
            transition_time_s: transition_time,
            state_ends,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::FunctionSpec;
    use crate::MB;

    fn deploy_two(platform: &mut Platform) -> Vec<StepState> {
        (0..2)
            .map(|i| {
                let (fid, _) = platform
                    .deploy(FunctionSpec {
                        name: format!("s{i}"),
                        memory_mb: 1024,
                        code_bytes: MB,
                        layer_bytes: vec![169 * MB, 10 * MB],
                    })
                    .unwrap();
                StepState {
                    name: format!("state{i}"),
                    function: fid,
                    work: InvocationWork {
                        load_bytes: 10 * MB,
                        flops: 500_000_000,
                        resident_bytes: 30 * MB,
                        ..Default::default()
                    },
                }
            })
            .collect()
    }

    #[test]
    fn transitions_counted_and_timed() {
        let mut p = Platform::aws_2020();
        let states = deploy_two(&mut p);
        let sf = StepFunction::standard("wf", states);
        assert_eq!(sf.num_transitions(), 3);
        let exec = sf.execute(&mut p, 0.0).unwrap();
        assert_eq!(exec.transitions, 3);
        assert!((exec.transition_time_s - 45.0).abs() < 1e-12);
        assert!(exec.end > 45.0);
        assert_eq!(exec.state_ends.len(), 2);
    }

    #[test]
    fn costs_include_transitions_and_invocations() {
        let mut p = Platform::aws_2020();
        let states = deploy_two(&mut p);
        let sf = StepFunction::standard("wf", states);
        let exec = sf.execute(&mut p, 0.0).unwrap();
        assert!(exec.dollars > 3.0 * DEFAULT_TRANSITION_COST);
    }

    #[test]
    fn paper_footnote_magnitude() {
        // The paper's observed ~108 s completion for a step-function-driven
        // ~10-lambda chain is dominated by ~11 transitions × 15 s.
        let mut p = Platform::aws_2020();
        let states: Vec<StepState> = (0..10)
            .flat_map(|_| deploy_two(&mut p).into_iter().take(1))
            .collect();
        let sf = StepFunction::standard("wf10", states);
        let exec = sf.execute(&mut p, 0.0).unwrap();
        assert!(exec.transition_time_s >= 150.0);
    }
}
