//! Platform quota presets (AWS Lambda limits, paper §2.1).

/// Limits enforced by the serverless platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quotas {
    /// Smallest memory block, MB (paper: 128).
    pub memory_min_mb: u32,
    /// Largest memory block, MB (Oct–Nov 2020: 3,008).
    pub memory_max_mb: u32,
    /// Memory block increment, MB (2020: 64).
    pub memory_step_mb: u32,
    /// Unzipped deployment-package cap, MB (paper `A` = 250).
    pub deploy_limit_mb: u32,
    /// Temporary (`/tmp`) storage cap, MB (paper `J` = 512).
    pub tmp_limit_mb: u32,
    /// Function execution timeout, seconds (900 on Lambda).
    pub timeout_s: f64,
    /// Maximum function layers usable to assemble the package (paper: 5).
    pub max_layers: u32,
    /// Maximum lambdas a job may request (paper `K`).
    pub max_lambdas: usize,
}

impl Quotas {
    /// The Oct–Nov 2020 AWS Lambda quotas the paper measured under.
    pub fn lambda_2020() -> Self {
        Quotas {
            memory_min_mb: 128,
            memory_max_mb: 3008,
            memory_step_mb: 64,
            deploy_limit_mb: 250,
            tmp_limit_mb: 512,
            timeout_s: 900.0,
            max_layers: 5,
            max_lambdas: 16,
        }
    }

    /// The late-2020 quota update the paper's §5.1 mentions as future work:
    /// 10,240 MB maximum in 1 MB increments (deployment cap unchanged).
    pub fn lambda_2021() -> Self {
        Quotas {
            memory_min_mb: 128,
            memory_max_mb: 10_240,
            memory_step_mb: 1,
            ..Self::lambda_2020()
        }
    }

    /// All valid memory blocks in MB, ascending.
    ///
    /// Beware: under the 2021 preset this is ~10k entries; use
    /// [`Quotas::memory_blocks_coarse`] for optimization grids.
    pub fn memory_blocks(&self) -> Vec<u32> {
        (self.memory_min_mb..=self.memory_max_mb)
            .step_by(self.memory_step_mb as usize)
            .collect()
    }

    /// Memory blocks thinned to at most `max_points` (always keeping the
    /// extremes); lets optimizers handle the 1 MB-granular 2021 quota.
    pub fn memory_blocks_coarse(&self, max_points: usize) -> Vec<u32> {
        let all = self.memory_blocks();
        if all.len() <= max_points || max_points < 2 {
            return all;
        }
        let stride = (all.len() - 1) as f64 / (max_points - 1) as f64;
        let mut out: Vec<u32> = (0..max_points)
            .map(|i| all[(i as f64 * stride).round() as usize])
            .collect();
        out.dedup();
        out
    }

    /// Valid blocks at an effective granularity of at least 64 MB (plus
    /// the top block). For fine-grained regimes (the 2021 1 MB preset)
    /// this bounds optimization grids while remaining a strict superset of
    /// the classic 64 MB grid — so widening the quota can never worsen an
    /// optimum over this search grid.
    pub fn memory_blocks_search_grid(&self) -> Vec<u32> {
        let step = self.memory_step_mb.max(64);
        // Align the step to a multiple of the native step so every point
        // stays allocatable.
        let step = step.div_ceil(self.memory_step_mb) * self.memory_step_mb;
        let mut out: Vec<u32> = (self.memory_min_mb..=self.memory_max_mb)
            .step_by(step as usize)
            .collect();
        if let Some(&last) = out.last() {
            if last != self.memory_max_mb {
                out.push(self.memory_max_mb);
            }
        }
        out
    }

    /// True when `mb` is an exactly allocatable block.
    pub fn is_valid_memory(&self, mb: u32) -> bool {
        mb >= self.memory_min_mb
            && mb <= self.memory_max_mb
            && (mb - self.memory_min_mb).is_multiple_of(self.memory_step_mb)
    }

    /// Smallest valid block ≥ `mb`, or `None` above the cap. This is the
    /// paper's constraint (7): `1 + ⌈(need − M)/β⌉ ≤ j` — blocks below the
    /// footprint are infeasible and pruned.
    pub fn round_up_memory(&self, mb: u32) -> Option<u32> {
        if mb > self.memory_max_mb {
            return None;
        }
        if mb <= self.memory_min_mb {
            return Some(self.memory_min_mb);
        }
        let over = mb - self.memory_min_mb;
        let steps = over.div_ceil(self.memory_step_mb);
        let rounded = self.memory_min_mb + steps * self.memory_step_mb;
        (rounded <= self.memory_max_mb).then_some(rounded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_2020_blocks_match_paper_fig1() {
        let q = Quotas::lambda_2020();
        let blocks = q.memory_blocks();
        // Fig. 1's x-ticks 1–44 are 256..=3008 in 64 MB steps; the full
        // grid from 128 MB has 46 entries.
        assert_eq!(blocks.len(), 46);
        assert_eq!(blocks[0], 128);
        assert_eq!(*blocks.last().unwrap(), 3008);
        let from_256 = blocks.iter().filter(|&&b| b >= 256).count();
        assert_eq!(from_256, 44);
    }

    #[test]
    fn validity_checks() {
        let q = Quotas::lambda_2020();
        assert!(q.is_valid_memory(512));
        assert!(q.is_valid_memory(3008));
        assert!(!q.is_valid_memory(100));
        assert!(!q.is_valid_memory(130));
        assert!(!q.is_valid_memory(4096));
    }

    #[test]
    fn round_up_matches_constraint7_example() {
        // Paper: a 500 MB footprint needs block j ≥ 7, i.e. 512 MB;
        // wait — the paper's example says 576 MB for M=128, β=64:
        // 1 + ceil((500-128)/64) = 1+6 = 7 → block 7 = 128 + 6·64 = 512.
        // The paper text rounds to 576; we follow the arithmetic: the
        // smallest block ≥ 500 is 512.
        let q = Quotas::lambda_2020();
        assert_eq!(q.round_up_memory(500), Some(512));
        assert_eq!(q.round_up_memory(512), Some(512));
        assert_eq!(q.round_up_memory(513), Some(576));
        assert_eq!(q.round_up_memory(3200), None);
        assert_eq!(q.round_up_memory(64), Some(128));
    }

    #[test]
    fn lambda_2021_extends_grid() {
        let q = Quotas::lambda_2021();
        assert!(q.is_valid_memory(10_240));
        assert!(q.is_valid_memory(1793));
        let coarse = q.memory_blocks_coarse(64);
        assert!(coarse.len() <= 64);
        assert_eq!(coarse[0], 128);
        assert_eq!(*coarse.last().unwrap(), 10_240);
    }

    #[test]
    fn coarse_grid_is_sorted_unique() {
        let q = Quotas::lambda_2021();
        let c = q.memory_blocks_coarse(50);
        let mut s = c.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(c, s);
    }
}
