//! Symbolic execution bridge: model partitions → platform work.
//!
//! The paper's Coordinator packages each partition (YAML + weights +
//! dependency layers) into a lambda and chains invocations through S3
//! (§4). This module turns a [`CutAccounting`] segment into the
//! [`FunctionSpec`] / [`InvocationWork`] the platform consumes, using the
//! paper's sizing conventions: dependencies `D` = 169 MB, handler `F` ≈
//! 1 MB, weights `y·e` = params × 4.

use crate::platform::{FunctionSpec, InvocationWork};
use crate::storage::ObjectKey;
use crate::MB;
use ampsinf_model::graph::{CutAccounting, LayerGraph};

/// The trimmed TF/Keras dependency-layer size the paper measures (169 MB).
pub const DEPS_BYTES: u64 = 169 * MB;
/// Handler-code size (the paper's `F`).
pub const CODE_BYTES: u64 = MB;

/// Work profile of one model partition on one lambda.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWork {
    /// Segment accounting from the model graph.
    pub seg: CutAccounting,
}

/// Phase inputs for a whole (unpartitioned) model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkPhases {
    /// Weight bytes to load.
    pub weight_bytes: u64,
    /// FLOPs to execute.
    pub flops: u64,
    /// Activation bytes materialized.
    pub activation_bytes: u64,
}

impl PartitionWork {
    /// Builds the work profile for layers `[start, end]` of `graph`.
    pub fn from_segment(graph: &LayerGraph, start: usize, end: usize) -> Self {
        PartitionWork {
            seg: graph.segment(start, end),
        }
    }

    /// Work profiles for a list of contiguous partitions given by their
    /// (inclusive) boundaries; `bounds` holds each partition's last layer
    /// index, strictly increasing, ending at `num_layers()-1`.
    pub fn chain(graph: &LayerGraph, bounds: &[usize]) -> Vec<Self> {
        assert!(!bounds.is_empty(), "at least one partition required");
        assert_eq!(
            *bounds.last().unwrap(),
            graph.num_layers() - 1,
            "last partition must end at the final layer"
        );
        let mut start = 0usize;
        let mut out = Vec::with_capacity(bounds.len());
        for &end in bounds {
            assert!(end >= start, "bounds must be strictly increasing");
            out.push(Self::from_segment(graph, start, end));
            start = end + 1;
        }
        out
    }

    /// The unzipped deployment package for this partition: handler +
    /// dependency layer + weights layer (paper constraint (4) LHS:
    /// `y·e + D + F`).
    pub fn function_spec(&self, name: impl Into<String>, memory_mb: u32) -> FunctionSpec {
        FunctionSpec {
            name: name.into(),
            memory_mb,
            code_bytes: CODE_BYTES,
            layer_bytes: vec![DEPS_BYTES, self.seg.weight_bytes],
        }
    }

    /// Resident footprint beyond the runtime: weights twice (file +
    /// in-memory graph) plus materialized activations plus staged input.
    pub fn resident_bytes(&self) -> u64 {
        2 * self.seg.weight_bytes + self.seg.activation_bytes + self.seg.input_bytes
    }

    /// `/tmp` usage: weight files plus the previous partition's output
    /// staged as a file (paper constraint (5) LHS: `y·z + p_{i-1}`).
    pub fn tmp_bytes(&self) -> u64 {
        self.seg.weight_bytes + self.seg.input_bytes
    }

    /// Invocation work, wiring the storage keys: reads `input_key` (None
    /// for the first partition, whose image arrives with the trigger) and
    /// writes `output_key` (None for the last partition, which returns the
    /// prediction in the response). Keys are interned storage ids — see
    /// [`crate::storage::ObjectStore::intern`].
    pub fn invocation(
        &self,
        input_key: Option<ObjectKey>,
        output_key: Option<ObjectKey>,
    ) -> InvocationWork {
        let mut work = InvocationWork::default();
        self.invocation_into(&mut work, input_key, output_key);
        work
    }

    /// Like [`invocation`](Self::invocation), but refills an existing
    /// [`InvocationWork`] in place so serving loops can reuse one scratch
    /// value per request instead of allocating fresh key vectors.
    pub fn invocation_into(
        &self,
        work: &mut InvocationWork,
        input_key: Option<ObjectKey>,
        output_key: Option<ObjectKey>,
    ) {
        work.load_bytes = self.seg.weight_bytes;
        work.flops = self.seg.flops;
        work.resident_bytes = self.resident_bytes();
        work.tmp_bytes = self.tmp_bytes();
        work.reads.clear();
        work.reads.extend(input_key);
        work.writes.clear();
        work.writes
            .extend(output_key.map(|k| (k, self.seg.output_bytes)));
    }
}

/// Whole-model work (the single-lambda deployments of §2.2.1).
pub fn whole_model(graph: &LayerGraph) -> PartitionWork {
    PartitionWork::from_segment(graph, 0, graph.num_layers() - 1)
}

/// A bounded set of pipeline stations for one chain stage: the
/// simulation-side mirror of the stage's warm-instance budget.
///
/// A request that is *ready* for the stage (its input tensor is
/// checkpointed in storage) is admitted at `max(ready, earliest station
/// free time)`; while fewer than `depth` stations exist, a fresh one opens
/// and the request starts immediately. Admission is strictly
/// first-ready-first-served in the caller's iteration order, so a pool
/// driven in request-index order is deterministic by construction — the
/// property the sharded serving engine's bit-identical reports rest on.
///
/// The pool accumulates the two scalars pipeline reports surface: `busy_s`
/// (station-occupied seconds — the utilization numerator) and `stall_s`
/// (ready-but-waiting seconds — the cost of an imbalanced cut).
#[derive(Debug, Clone, PartialEq)]
pub struct StationPool {
    /// Per-station next-free times; grows lazily up to `depth` entries.
    free_at: Vec<f64>,
    depth: usize,
    busy_s: f64,
    stall_s: f64,
}

impl StationPool {
    /// A pool of at most `depth` stations (at least one).
    pub fn new(depth: usize) -> Self {
        assert!(depth >= 1, "a station pool needs at least one station");
        StationPool {
            free_at: Vec::new(),
            depth,
            busy_s: 0.0,
            stall_s: 0.0,
        }
    }

    /// Admits a request that became ready at `ready`: returns
    /// `(station, start)` where `start = max(ready, earliest free)`. The
    /// difference `start − ready` is recorded as stall. The station stays
    /// occupied until [`StationPool::release`] is called for it.
    pub fn admit(&mut self, ready: f64) -> (usize, f64) {
        if self.free_at.len() < self.depth {
            self.free_at.push(f64::INFINITY); // occupied until released
            return (self.free_at.len() - 1, ready);
        }
        // Earliest-free station; ties keep the lowest index so the choice
        // is a pure function of the pool state.
        let (station, free) = self
            .free_at
            .iter()
            .copied()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            .expect("depth >= 1");
        let start = ready.max(free);
        self.stall_s += start - ready;
        self.free_at[station] = f64::INFINITY;
        (station, start)
    }

    /// Releases `station` (occupied since `start`) at `until`, accruing
    /// the occupancy as busy time.
    pub fn release(&mut self, station: usize, start: f64, until: f64) {
        debug_assert!(until >= start, "station released before it started");
        self.busy_s += until - start;
        self.free_at[station] = until;
    }

    /// Station-occupied seconds accumulated so far.
    pub fn busy_s(&self) -> f64 {
        self.busy_s
    }

    /// Ready-but-waiting seconds accumulated so far.
    pub fn stall_s(&self) -> f64 {
        self.stall_s
    }

    /// The configured station budget.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use ampsinf_model::zoo;

    #[test]
    fn mobilenet_fits_one_lambda_resnet_does_not() {
        // The paper's Table 1 / §2.2 premise, via actual quota checks.
        let p = Platform::aws_2020();
        let mob = whole_model(&zoo::mobilenet_v1());
        assert!(p
            .validate_spec(&mob.function_spec("mobilenet", 512))
            .is_ok());
        let rn = whole_model(&zoo::resnet50());
        assert!(p
            .validate_spec(&rn.function_spec("resnet50", 1024))
            .is_err());
        let inc = whole_model(&zoo::inception_v3());
        assert!(p
            .validate_spec(&inc.function_spec("inception", 1024))
            .is_err());
    }

    #[test]
    fn table1_deployment_sizes() {
        // Table 1: ResNet50 267 MB, InceptionV3 261 MB (model + 169 MB
        // deps + handler).
        let rn = whole_model(&zoo::resnet50())
            .function_spec("r", 1024)
            .package_bytes() as f64
            / MB as f64;
        assert!((rn - 267.0).abs() < 2.0, "{rn} MB");
        let inc = whole_model(&zoo::inception_v3())
            .function_spec("i", 1024)
            .package_bytes() as f64
            / MB as f64;
        assert!((inc - 261.0).abs() < 2.0, "{inc} MB");
    }

    #[test]
    fn chain_bounds_partition_the_model() {
        let g = zoo::mobilenet_v1();
        let n = g.num_layers();
        let parts = PartitionWork::chain(&g, &[30, 60, n - 1]);
        assert_eq!(parts.len(), 3);
        let total_w: u64 = parts.iter().map(|p| p.seg.weight_bytes).sum();
        assert_eq!(total_w, g.weight_bytes());
        // Adjacent boundary sizes agree.
        assert_eq!(parts[0].seg.output_bytes, parts[1].seg.input_bytes);
        assert_eq!(parts[1].seg.output_bytes, parts[2].seg.input_bytes);
    }

    #[test]
    fn invocation_wiring() {
        let g = zoo::mobilenet_v1();
        let parts = PartitionWork::chain(&g, &[40, g.num_layers() - 1]);
        let mut store = crate::storage::ObjectStore::new(crate::storage::StoreKind::s3());
        let inter = store.intern("inter/0");
        let w0 = parts[0].invocation(None, Some(inter));
        assert!(w0.reads.is_empty());
        assert_eq!(w0.writes.len(), 1);
        assert_eq!(w0.writes[0], (inter, parts[0].seg.output_bytes));
        let w1 = parts[1].invocation(Some(inter), None);
        assert_eq!(w1.reads, vec![inter]);
        assert!(w1.writes.is_empty());
        assert_eq!(w1.load_bytes, parts[1].seg.weight_bytes);
        // The in-place variant refills scratch without reallocating keys.
        let mut scratch = w0;
        parts[1].invocation_into(&mut scratch, Some(inter), None);
        assert_eq!(scratch, w1);
    }

    #[test]
    fn tmp_accounting_follows_constraint5() {
        let g = zoo::resnet50();
        let parts = PartitionWork::chain(&g, &[80, g.num_layers() - 1]);
        for p in &parts {
            assert_eq!(p.tmp_bytes(), p.seg.weight_bytes + p.seg.input_bytes);
        }
    }

    #[test]
    #[should_panic(expected = "last partition must end")]
    fn chain_requires_full_coverage() {
        let g = zoo::mobilenet_v1();
        PartitionWork::chain(&g, &[10, 20]);
    }

    #[test]
    fn station_pool_depth_one_serializes() {
        let mut pool = StationPool::new(1);
        let (s0, t0) = pool.admit(0.0);
        assert_eq!((s0, t0), (0, 0.0));
        pool.release(s0, t0, 2.0);
        // Ready at 1.0 but the single station is busy until 2.0.
        let (s1, t1) = pool.admit(1.0);
        assert_eq!((s1, t1), (0, 2.0));
        pool.release(s1, t1, 3.0);
        assert_eq!(pool.stall_s(), 1.0);
        assert_eq!(pool.busy_s(), 3.0);
    }

    #[test]
    fn station_pool_depth_two_overlaps() {
        let mut pool = StationPool::new(2);
        let (s0, t0) = pool.admit(0.0);
        let (s1, t1) = pool.admit(0.5); // second station opens, no wait
        assert_ne!(s0, s1);
        assert_eq!(t1, 0.5);
        pool.release(s0, t0, 4.0);
        pool.release(s1, t1, 1.0);
        // Third admission takes the earlier-free station (freed at 1.0).
        let (s2, t2) = pool.admit(0.9);
        assert_eq!(s2, s1);
        assert_eq!(t2, 1.0);
        assert!((pool.stall_s() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn station_pool_tie_takes_lowest_index() {
        let mut pool = StationPool::new(2);
        let (a, ta) = pool.admit(0.0);
        let (b, tb) = pool.admit(0.0);
        pool.release(a, ta, 5.0);
        pool.release(b, tb, 5.0);
        let (c, _) = pool.admit(0.0);
        assert_eq!(c, 0);
    }

    #[test]
    #[should_panic(expected = "at least one station")]
    fn station_pool_rejects_zero_depth() {
        let _ = StationPool::new(0);
    }
}
