//! Symbolic execution bridge: model partitions → platform work.
//!
//! The paper's Coordinator packages each partition (YAML + weights +
//! dependency layers) into a lambda and chains invocations through S3
//! (§4). This module turns a [`CutAccounting`] segment into the
//! [`FunctionSpec`] / [`InvocationWork`] the platform consumes, using the
//! paper's sizing conventions: dependencies `D` = 169 MB, handler `F` ≈
//! 1 MB, weights `y·e` = params × 4.

use crate::platform::{FunctionSpec, InvocationWork};
use crate::storage::ObjectKey;
use crate::MB;
use ampsinf_model::graph::{CutAccounting, LayerGraph};

/// The trimmed TF/Keras dependency-layer size the paper measures (169 MB).
pub const DEPS_BYTES: u64 = 169 * MB;
/// Handler-code size (the paper's `F`).
pub const CODE_BYTES: u64 = MB;

/// Work profile of one model partition on one lambda.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWork {
    /// Segment accounting from the model graph.
    pub seg: CutAccounting,
}

/// Phase inputs for a whole (unpartitioned) model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkPhases {
    /// Weight bytes to load.
    pub weight_bytes: u64,
    /// FLOPs to execute.
    pub flops: u64,
    /// Activation bytes materialized.
    pub activation_bytes: u64,
}

impl PartitionWork {
    /// Builds the work profile for layers `[start, end]` of `graph`.
    pub fn from_segment(graph: &LayerGraph, start: usize, end: usize) -> Self {
        PartitionWork {
            seg: graph.segment(start, end),
        }
    }

    /// Work profiles for a list of contiguous partitions given by their
    /// (inclusive) boundaries; `bounds` holds each partition's last layer
    /// index, strictly increasing, ending at `num_layers()-1`.
    pub fn chain(graph: &LayerGraph, bounds: &[usize]) -> Vec<Self> {
        assert!(!bounds.is_empty(), "at least one partition required");
        assert_eq!(
            *bounds.last().unwrap(),
            graph.num_layers() - 1,
            "last partition must end at the final layer"
        );
        let mut start = 0usize;
        let mut out = Vec::with_capacity(bounds.len());
        for &end in bounds {
            assert!(end >= start, "bounds must be strictly increasing");
            out.push(Self::from_segment(graph, start, end));
            start = end + 1;
        }
        out
    }

    /// The unzipped deployment package for this partition: handler +
    /// dependency layer + weights layer (paper constraint (4) LHS:
    /// `y·e + D + F`).
    pub fn function_spec(&self, name: impl Into<String>, memory_mb: u32) -> FunctionSpec {
        FunctionSpec {
            name: name.into(),
            memory_mb,
            code_bytes: CODE_BYTES,
            layer_bytes: vec![DEPS_BYTES, self.seg.weight_bytes],
        }
    }

    /// Resident footprint beyond the runtime: weights twice (file +
    /// in-memory graph) plus materialized activations plus staged input.
    pub fn resident_bytes(&self) -> u64 {
        2 * self.seg.weight_bytes + self.seg.activation_bytes + self.seg.input_bytes
    }

    /// `/tmp` usage: weight files plus the previous partition's output
    /// staged as a file (paper constraint (5) LHS: `y·z + p_{i-1}`).
    pub fn tmp_bytes(&self) -> u64 {
        self.seg.weight_bytes + self.seg.input_bytes
    }

    /// Invocation work, wiring the storage keys: reads `input_key` (None
    /// for the first partition, whose image arrives with the trigger) and
    /// writes `output_key` (None for the last partition, which returns the
    /// prediction in the response). Keys are interned storage ids — see
    /// [`crate::storage::ObjectStore::intern`].
    pub fn invocation(
        &self,
        input_key: Option<ObjectKey>,
        output_key: Option<ObjectKey>,
    ) -> InvocationWork {
        let mut work = InvocationWork::default();
        self.invocation_into(&mut work, input_key, output_key);
        work
    }

    /// Like [`invocation`](Self::invocation), but refills an existing
    /// [`InvocationWork`] in place so serving loops can reuse one scratch
    /// value per request instead of allocating fresh key vectors.
    pub fn invocation_into(
        &self,
        work: &mut InvocationWork,
        input_key: Option<ObjectKey>,
        output_key: Option<ObjectKey>,
    ) {
        work.load_bytes = self.seg.weight_bytes;
        work.flops = self.seg.flops;
        work.resident_bytes = self.resident_bytes();
        work.tmp_bytes = self.tmp_bytes();
        work.reads.clear();
        work.reads.extend(input_key);
        work.writes.clear();
        work.writes
            .extend(output_key.map(|k| (k, self.seg.output_bytes)));
    }
}

/// Whole-model work (the single-lambda deployments of §2.2.1).
pub fn whole_model(graph: &LayerGraph) -> PartitionWork {
    PartitionWork::from_segment(graph, 0, graph.num_layers() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use ampsinf_model::zoo;

    #[test]
    fn mobilenet_fits_one_lambda_resnet_does_not() {
        // The paper's Table 1 / §2.2 premise, via actual quota checks.
        let p = Platform::aws_2020();
        let mob = whole_model(&zoo::mobilenet_v1());
        assert!(p
            .validate_spec(&mob.function_spec("mobilenet", 512))
            .is_ok());
        let rn = whole_model(&zoo::resnet50());
        assert!(p
            .validate_spec(&rn.function_spec("resnet50", 1024))
            .is_err());
        let inc = whole_model(&zoo::inception_v3());
        assert!(p
            .validate_spec(&inc.function_spec("inception", 1024))
            .is_err());
    }

    #[test]
    fn table1_deployment_sizes() {
        // Table 1: ResNet50 267 MB, InceptionV3 261 MB (model + 169 MB
        // deps + handler).
        let rn = whole_model(&zoo::resnet50())
            .function_spec("r", 1024)
            .package_bytes() as f64
            / MB as f64;
        assert!((rn - 267.0).abs() < 2.0, "{rn} MB");
        let inc = whole_model(&zoo::inception_v3())
            .function_spec("i", 1024)
            .package_bytes() as f64
            / MB as f64;
        assert!((inc - 261.0).abs() < 2.0, "{inc} MB");
    }

    #[test]
    fn chain_bounds_partition_the_model() {
        let g = zoo::mobilenet_v1();
        let n = g.num_layers();
        let parts = PartitionWork::chain(&g, &[30, 60, n - 1]);
        assert_eq!(parts.len(), 3);
        let total_w: u64 = parts.iter().map(|p| p.seg.weight_bytes).sum();
        assert_eq!(total_w, g.weight_bytes());
        // Adjacent boundary sizes agree.
        assert_eq!(parts[0].seg.output_bytes, parts[1].seg.input_bytes);
        assert_eq!(parts[1].seg.output_bytes, parts[2].seg.input_bytes);
    }

    #[test]
    fn invocation_wiring() {
        let g = zoo::mobilenet_v1();
        let parts = PartitionWork::chain(&g, &[40, g.num_layers() - 1]);
        let mut store = crate::storage::ObjectStore::new(crate::storage::StoreKind::s3());
        let inter = store.intern("inter/0");
        let w0 = parts[0].invocation(None, Some(inter));
        assert!(w0.reads.is_empty());
        assert_eq!(w0.writes.len(), 1);
        assert_eq!(w0.writes[0], (inter, parts[0].seg.output_bytes));
        let w1 = parts[1].invocation(Some(inter), None);
        assert_eq!(w1.reads, vec![inter]);
        assert!(w1.writes.is_empty());
        assert_eq!(w1.load_bytes, parts[1].seg.weight_bytes);
        // The in-place variant refills scratch without reallocating keys.
        let mut scratch = w0;
        parts[1].invocation_into(&mut scratch, Some(inter), None);
        assert_eq!(scratch, w1);
    }

    #[test]
    fn tmp_accounting_follows_constraint5() {
        let g = zoo::resnet50();
        let parts = PartitionWork::chain(&g, &[80, g.num_layers() - 1]);
        for p in &parts {
            assert_eq!(p.tmp_bytes(), p.seg.weight_bytes + p.seg.input_bytes);
        }
    }

    #[test]
    #[should_panic(expected = "last partition must end")]
    fn chain_requires_full_coverage() {
        let g = zoo::mobilenet_v1();
        PartitionWork::chain(&g, &[10, 20]);
    }
}
