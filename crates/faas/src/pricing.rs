//! Price sheets (AWS, Oct–Nov 2020 — the paper's measurement window).
//!
//! The Lambda compute price is load-bearing for reproduction: the paper's
//! Table 2 costs equal `duration × GB × $0.0000166667` to the printed
//! precision (22.03 s × 0.5 GB × 1.66667e-5 ≈ $0.00018), so with the same
//! sheet our simulated costs are directly comparable.

/// Prices for the platform services the paper's cost model uses (Eq. 3:
/// compute `v`, storage `H`, requests `G`/`U`, invocation `I`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriceSheet {
    /// Lambda compute, $ per GB-second.
    pub lambda_gb_second: f64,
    /// Provisioned/keep-warm idle capacity, $ per GB-second (Lambda
    /// provisioned concurrency; billed by warm-pool policies that keep
    /// instances resident while idle).
    pub lambda_provisioned_gb_second: f64,
    /// Lambda invocation, $ per request (the paper's `I`).
    pub lambda_request: f64,
    /// Billing granularity in seconds (2020: 100 ms round-up).
    pub billing_granularity_s: f64,
    /// S3 PUT/COPY/POST, $ per request (the paper's `U`).
    pub s3_put_request: f64,
    /// S3 GET, $ per request (the paper's `G`).
    pub s3_get_request: f64,
    /// S3 storage, $ per GB-second (the paper's `H`; derived from
    /// $0.023/GB-month).
    pub s3_storage_gb_second: f64,
    /// ml.t2.medium on-demand, $ per hour (Sage 1 notebook).
    pub sagemaker_t2_medium_hour: f64,
    /// ml.m4.xlarge hosting, $ per hour (Sage 2 endpoint).
    pub sagemaker_m4_xlarge_hour: f64,
    /// S3 data-transfer-out to instances, $ per GB (intra-region ≈ 0, but
    /// SageMaker hosting bills processing; kept as a knob).
    pub s3_transfer_gb: f64,
}

impl PriceSheet {
    /// The Oct–Nov 2020 AWS sheet (us-east-1).
    pub fn aws_2020() -> Self {
        PriceSheet {
            lambda_gb_second: 0.000_016_666_7,
            lambda_provisioned_gb_second: 0.000_004_166_7,
            lambda_request: 0.000_000_2,
            billing_granularity_s: 0.1,
            s3_put_request: 0.005 / 1000.0,
            s3_get_request: 0.0004 / 1000.0,
            s3_storage_gb_second: 0.023 / (30.0 * 24.0 * 3600.0),
            sagemaker_t2_medium_hour: 0.0582,
            sagemaker_m4_xlarge_hour: 0.28,
            s3_transfer_gb: 0.0,
        }
    }

    /// Lambda compute cost for a raw duration at `memory_mb`, applying the
    /// billing round-up.
    pub fn lambda_compute_cost(&self, duration_s: f64, memory_mb: u32) -> f64 {
        let billed = self.billed_duration(duration_s);
        billed * (f64::from(memory_mb) / 1024.0) * self.lambda_gb_second
    }

    /// Duration rounded up to the billing granularity.
    pub fn billed_duration(&self, duration_s: f64) -> f64 {
        if self.billing_granularity_s <= 0.0 {
            return duration_s;
        }
        (duration_s / self.billing_granularity_s).ceil() * self.billing_granularity_s
    }

    /// S3 storage cost for holding `bytes` for `seconds`.
    pub fn s3_storage_cost(&self, bytes: u64, seconds: f64) -> f64 {
        (bytes as f64 / 1e9) * seconds * self.s3_storage_gb_second
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_costs_reproduce() {
        // Paper Table 2: (memory MB, seconds, dollars).
        let sheet = PriceSheet::aws_2020();
        let rows = [
            (512u32, 22.03, 0.00018),
            (1024, 10.65, 0.00017),
            (1536, 7.52, 0.00019),
            (2048, 6.38, 0.00021),
            (3008, 6.32, 0.00031),
        ];
        for (mem, t, dollars) in rows {
            let cost = sheet.lambda_compute_cost(t, mem) + sheet.lambda_request;
            assert!(
                (cost - dollars).abs() < 0.00001,
                "{mem} MB: computed {cost} vs paper {dollars}"
            );
        }
    }

    #[test]
    fn billing_rounds_up_to_100ms() {
        let sheet = PriceSheet::aws_2020();
        assert!((sheet.billed_duration(0.101) - 0.2).abs() < 1e-12);
        assert!((sheet.billed_duration(0.2) - 0.2).abs() < 1e-12);
        assert!((sheet.billed_duration(0.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn storage_cost_scales_linearly() {
        let sheet = PriceSheet::aws_2020();
        let c1 = sheet.s3_storage_cost(1_000_000_000, 60.0);
        let c2 = sheet.s3_storage_cost(2_000_000_000, 60.0);
        assert!((c2 - 2.0 * c1).abs() < 1e-15);
        // 1 GB for a month ≈ $0.023.
        let month = sheet.s3_storage_cost(1_000_000_000, 30.0 * 24.0 * 3600.0);
        assert!((month - 0.023).abs() < 1e-9);
    }

    #[test]
    fn request_prices_match_aws() {
        let s = PriceSheet::aws_2020();
        assert!((s.s3_put_request - 5e-6).abs() < 1e-12);
        assert!((s.s3_get_request - 4e-7).abs() < 1e-12);
        assert!((s.lambda_request - 2e-7).abs() < 1e-15);
    }
}
