//! A minimal discrete-event engine.
//!
//! Batch experiments (paper §5.4: ten images in parallel, 100 images in 10
//! batches) need event ordering across concurrently executing lambdas; this
//! queue provides deterministic time-then-FIFO ordering.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: fire time plus payload.
struct Scheduled<T> {
    at: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap; earliest time (then lowest
        // seq) must pop first.
        other
            .at
            .partial_cmp(&self.at)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic future-event list.
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    seq: u64,
    now: f64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Current simulation time (the fire time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `payload` at absolute time `at` (clamped to now).
    pub fn schedule_at(&mut self, at: f64, payload: T) {
        let at = at.max(self.now);
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Schedules `payload` after a delay from now.
    pub fn schedule_in(&mut self, delay: f64, payload: T) {
        debug_assert!(delay >= 0.0, "negative delay");
        self.schedule_at(self.now + delay.max(0.0), payload);
    }

    /// Pops the next event, advancing the clock to its fire time.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(3.0, "c");
        q.schedule_at(1.0, "a");
        q.schedule_at(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule_at(1.0, "first");
        q.schedule_at(1.0, "second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn clock_advances_and_relative_scheduling() {
        let mut q = EventQueue::new();
        q.schedule_in(5.0, 1u32);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 5.0);
        assert_eq!(q.now(), 5.0);
        q.schedule_in(2.0, 2u32);
        assert_eq!(q.pop(), Some((7.0, 2u32)));
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(10.0, "x");
        q.pop();
        q.schedule_at(1.0, "late");
        assert_eq!(q.pop(), Some((10.0, "late")));
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_in(1.0, 0);
        assert_eq!(q.len(), 1);
    }
}
