//! Serverless-platform simulator (AWS-Lambda-like) for AMPS-Inf.
//!
//! The paper's testbed is AWS Lambda (Oct–Nov 2020 quotas and prices) plus
//! S3 for intermediate tensors and SageMaker VM instances as comparators.
//! This crate reproduces that environment as a simulator exposing the same
//! observables the paper's optimizer and measurements use: **durations and
//! dollars** as functions of (work, memory configuration, data movement).
//!
//! Fidelity anchors (see DESIGN.md §5):
//! * the pricing sheet is the real one — the paper's own Table 2 costs are
//!   reproduced exactly by `duration × GB × $1.66667e-5` plus request fees;
//! * CPU share scales linearly with memory and saturates at 1,792 MB
//!   (AWS's documented allocation; visible in the paper's Table 2 as the
//!   2048→3008 plateau);
//! * billing rounds up to 100 ms (2020 granularity) — the source of the
//!   multiple local cost minima the paper observes in Fig. 1;
//! * memory pressure near the footprint adds a slowdown (the paper's
//!   observation that 128 MB cannot even finish before timeout).
//!
//! Modules: [`quotas`] (platform limits, 2020 + 2021 presets), [`pricing`]
//! (price sheets), [`perf`] (the Lambda performance law), [`storage`]
//! (S3-like object store), [`vm`] (EC2/SageMaker instances), [`event`]
//! (discrete-event engine), [`ledger`] (itemized cost accounting),
//! [`platform`] (deploy/invoke API enforcing quotas), [`runtime`]
//! (symbolic execution of model partitions).
//!
//! # Example: deploy and invoke one function
//!
//! ```
//! use ampsinf_faas::{FunctionSpec, InvocationWork, Platform, MB};
//!
//! let mut platform = Platform::aws_2020();
//! let (fid, _deploy_s) = platform
//!     .deploy(FunctionSpec {
//!         name: "mobilenet".into(),
//!         memory_mb: 1024,
//!         code_bytes: MB,
//!         layer_bytes: vec![169 * MB, 17 * MB], // deps + weights
//!     })
//!     .unwrap();
//! let out = platform
//!     .invoke(fid, 0.0, &InvocationWork {
//!         load_bytes: 17 * MB,
//!         flops: 1_140_000_000,
//!         resident_bytes: 60 * MB,
//!         ..Default::default()
//!     })
//!     .unwrap();
//! assert!(out.duration() > 0.0);
//! // The 2020 pricing identity the paper's Table 2 exhibits:
//! let expect = platform.prices.lambda_compute_cost(out.duration(), 1024)
//!     + platform.prices.lambda_request;
//! assert!((out.dollars - expect).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod fault;
pub mod ledger;
pub mod perf;
pub mod platform;
pub mod pricing;
pub mod quotas;
pub mod rng;
pub mod runtime;
pub mod stepfn;
pub mod storage;
pub mod vm;

pub use fault::{FaultKind, FaultPlan};
pub use ledger::{CostItem, CostLedger, Note};
pub use perf::{LambdaPerf, PerfModel};
pub use platform::{
    DeployError, FailedInvocation, FunctionId, FunctionSpec, InvocationOutcome, InvocationWork,
    InvokeError, Platform, WarmPoolPolicy,
};
pub use pricing::PriceSheet;
pub use quotas::Quotas;
pub use rng::SmallRng;
pub use runtime::{PartitionWork, StationPool, WorkPhases};
pub use stepfn::{StepExecution, StepFunction, StepState};
pub use storage::{ObjectKey, ObjectStore, StoreKind};
pub use vm::{VmInstance, VmType};

/// Mebibyte in bytes.
pub const MB: u64 = 1024 * 1024;
