//! The serverless platform: deployment quotas, invocation semantics,
//! warm-start tracking, billing — including failure billing: a failed or
//! timed-out invocation charges GB-seconds for the time it actually
//! consumed plus the request fee, exactly as real Lambda does.

use crate::fault::{FaultInjector, FaultKind, FaultPlan};
use crate::ledger::{CostItem, CostLedger, Note};
use crate::perf::{DurationBreakdown, LambdaPerf, PerfModel};
use crate::pricing::PriceSheet;
use crate::quotas::Quotas;
use crate::storage::{ObjectKey, ObjectStore, StoreKind};
use crate::MB;

/// Handle to a deployed function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FunctionId(pub usize);

/// What gets deployed: code plus function layers (the paper attaches the
/// trimmed dependencies and each partition's weights as Lambda layers).
#[derive(Debug, Clone)]
pub struct FunctionSpec {
    /// Function name.
    pub name: String,
    /// Memory block, MB.
    pub memory_mb: u32,
    /// Handler code size, bytes (the paper's `F`).
    pub code_bytes: u64,
    /// Unzipped layer sizes, bytes (dependencies `D`, weights `y·e`).
    pub layer_bytes: Vec<u64>,
}

impl FunctionSpec {
    /// Total unzipped deployment size (paper constraint (4) LHS).
    pub fn package_bytes(&self) -> u64 {
        self.code_bytes + self.layer_bytes.iter().sum::<u64>()
    }
}

/// Why a deployment was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// The requested memory is not an allocatable block.
    InvalidMemory(u32),
    /// Unzipped package exceeds the platform cap (paper constraint (4)).
    PackageTooLarge {
        /// Requested package size in bytes.
        got: u64,
        /// Platform cap in bytes.
        limit: u64,
    },
    /// More function layers than the platform allows.
    TooManyLayers(usize),
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::InvalidMemory(mb) => write!(f, "invalid memory block {mb} MB"),
            DeployError::PackageTooLarge { got, limit } => write!(
                f,
                "package {:.1} MB exceeds the {:.0} MB deployment limit",
                *got as f64 / MB as f64,
                *limit as f64 / MB as f64
            ),
            DeployError::TooManyLayers(n) => write!(f, "{n} layers exceed the platform cap"),
        }
    }
}

impl std::error::Error for DeployError {}

/// Why an invocation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum InvokeError {
    /// Resident footprint cannot fit the memory block at all.
    OutOfMemory {
        /// Resident footprint, MB.
        footprint_mb: f64,
        /// Configured memory, MB.
        memory_mb: u32,
    },
    /// `/tmp` usage exceeds the temporary-storage cap (paper constraint (5)).
    TmpExceeded {
        /// Requested bytes.
        got: u64,
        /// Cap in bytes.
        limit: u64,
    },
    /// Execution exceeded the platform timeout.
    Timeout {
        /// Computed duration, seconds.
        duration_s: f64,
    },
    /// A required input object is missing from storage.
    MissingInput(String),
    /// Storage stayed unavailable through the retry budget.
    StorageUnavailable(String),
    /// The handler crashed partway through (injected fault).
    Crashed {
        /// Seconds consumed before the crash.
        duration_s: f64,
    },
    /// Sandbox creation failed before the handler ran (injected fault).
    ColdStartFailed,
    /// Unknown function id.
    NoSuchFunction,
}

impl InvokeError {
    /// True for failure modes a retry can plausibly fix (transient storage
    /// or injected-fault failures); false for deterministic configuration
    /// errors where retrying would only burn money.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            InvokeError::Timeout { .. }
                | InvokeError::StorageUnavailable(_)
                | InvokeError::Crashed { .. }
                | InvokeError::ColdStartFailed
        )
    }
}

impl std::fmt::Display for InvokeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvokeError::OutOfMemory {
                footprint_mb,
                memory_mb,
            } => write!(
                f,
                "{footprint_mb:.0} MB footprint cannot run in {memory_mb} MB"
            ),
            InvokeError::TmpExceeded { got, limit } => write!(
                f,
                "tmp usage {:.1} MB exceeds {:.0} MB",
                *got as f64 / MB as f64,
                *limit as f64 / MB as f64
            ),
            InvokeError::Timeout { duration_s } => {
                write!(f, "execution of {duration_s:.1} s exceeds the timeout")
            }
            InvokeError::MissingInput(k) => write!(f, "missing input object {k}"),
            InvokeError::StorageUnavailable(k) => {
                write!(f, "storage unavailable for object {k}")
            }
            InvokeError::Crashed { duration_s } => {
                write!(f, "handler crashed after {duration_s:.1} s")
            }
            InvokeError::ColdStartFailed => write!(f, "sandbox creation failed"),
            InvokeError::NoSuchFunction => write!(f, "unknown function"),
        }
    }
}

impl std::error::Error for InvokeError {}

/// A failed invocation with its billing: what went wrong, how long the
/// sandbox ran before dying, and what that consumed time cost. Real
/// Lambda bills failed and timed-out invocations for their duration — the
/// retry-cost trade-off a cost-minimizing coordinator must account for.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedInvocation {
    /// Why the invocation failed.
    pub reason: InvokeError,
    /// When the invocation started.
    pub start: f64,
    /// When the platform gave up on it (kill/crash/error instant).
    pub end: f64,
    /// Phase breakdown of the time consumed before failure.
    pub breakdown: DurationBreakdown,
    /// Billed duration (consumed time, rounded up to the granularity).
    pub billed_s: f64,
    /// Dollars charged for the failed attempt (compute for consumed time
    /// + request fee + storage fees already incurred).
    pub dollars: f64,
    /// Whether the attempt rode a warm container.
    pub warm: bool,
}

impl FailedInvocation {
    /// Wall-clock the failed attempt consumed.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// An unbilled failure (nothing ran — e.g. unknown function id).
    fn unbilled(reason: InvokeError, start: f64) -> Self {
        FailedInvocation {
            reason,
            start,
            end: start,
            breakdown: DurationBreakdown::default(),
            billed_s: 0.0,
            dollars: 0.0,
            warm: false,
        }
    }
}

impl std::fmt::Display for FailedInvocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invocation failed after {:.2} s (${:.6} billed): {}",
            self.duration(),
            self.dollars,
            self.reason
        )
    }
}

impl std::error::Error for FailedInvocation {}

impl From<FailedInvocation> for InvokeError {
    fn from(failed: FailedInvocation) -> Self {
        failed.reason
    }
}

/// Work performed by one invocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InvocationWork {
    /// Weight bytes to deserialize on (cold) start.
    pub load_bytes: u64,
    /// Compute FLOPs.
    pub flops: u64,
    /// Resident bytes beyond the runtime footprint (weights ×2 +
    /// activations + staged input).
    pub resident_bytes: u64,
    /// `/tmp` bytes used (weight files + previous partition's output).
    pub tmp_bytes: u64,
    /// Input object keys read from storage before compute (interned in
    /// the platform's store — no per-invocation string building).
    pub reads: Vec<ObjectKey>,
    /// Output objects written after compute: `(key, bytes)`.
    pub writes: Vec<(ObjectKey, u64)>,
}

/// Result of a successful invocation.
#[derive(Debug, Clone)]
pub struct InvocationOutcome {
    /// When the invocation started.
    pub start: f64,
    /// When it finished.
    pub end: f64,
    /// Phase breakdown.
    pub breakdown: DurationBreakdown,
    /// Billed duration (rounded up to the billing granularity).
    pub billed_s: f64,
    /// Dollars charged for this invocation (compute + request + storage
    /// request fees).
    pub dollars: f64,
    /// Whether the container was warm (import/load skipped).
    pub warm: bool,
    /// Seconds burned waiting out failed storage attempts (client-side
    /// retries against a flaky store); part of `transfer_s` and of the
    /// billed duration, surfaced so callers can attribute waste.
    pub storage_retry_s: f64,
}

impl InvocationOutcome {
    /// Wall-clock duration.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

#[derive(Debug, Clone)]
struct DeployedFunction {
    spec: FunctionSpec,
    /// `spec.package_bytes()` precomputed at deploy time — the invoke hot
    /// path needs it for cold-start sizing without walking `layer_bytes`.
    package_bytes: u64,
    /// Warm container pool: `busy_until` per live instance, kept sorted
    /// ascending (a free-list ordered by idle-since time). Lambda scales
    /// out under concurrency — a request arriving while all instances are
    /// busy gets a fresh (cold) instance; an idle instance within the
    /// keep-alive window is reused warm. The sort order makes warm-slot
    /// selection a binary search instead of a linear scan: the candidate
    /// is always the largest `busy_until` ≤ the request start.
    instances: Vec<f64>,
    /// Total cold starts observed (metrics).
    cold_starts: usize,
    /// Instances created by [`Platform::pre_warm`] (metrics).
    pre_warmed: usize,
    /// Idle warm seconds already consumed by reused instances (the gap
    /// between an instance going idle and its next warm invocation),
    /// accumulated at invoke time and drained by
    /// [`Platform::settle_warm_pool`].
    idle_warm_s: f64,
    /// Idle time is settled up to this instant (no double billing across
    /// repeated settlements), mirroring storage's `billed_until`.
    idle_billed_until: f64,
}

impl DeployedFunction {
    /// Returns a sandbox to the pool at `busy_until`, preserving the sort;
    /// a fresh (cold) sandbox also counts toward `cold_starts`.
    fn pool_insert(&mut self, busy_until: f64, warm: bool) {
        let at = self.instances.partition_point(|&b| b <= busy_until);
        self.instances.insert(at, busy_until);
        if !warm {
            self.cold_starts += 1;
        }
    }
}

/// Warm-pool provisioning policy: how a deployment keeps capacity
/// resident between requests. The default reproduces classic Lambda
/// behavior (nothing pre-warmed, 10-minute keep-alive, idle time free);
/// the other presets model provisioned concurrency (paid pre-warmed
/// instances that never lapse) and scale-to-zero (every request cold).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmPoolPolicy {
    /// Instances pre-warmed per function at serving start. The sharded
    /// serving engine splits this count across its lanes.
    pub pre_warm: usize,
    /// How long an idle instance stays warm, seconds (`f64::INFINITY` =
    /// never lapses).
    pub keep_alive_s: f64,
    /// Whether idle warm time is billed (provisioned-concurrency pricing,
    /// [`CostItem::WarmPoolIdle`]). When false, idle seconds are still
    /// *measured* and reported — just not charged.
    pub bill_idle: bool,
}

impl Default for WarmPoolPolicy {
    fn default() -> Self {
        WarmPoolPolicy::lambda_default()
    }
}

impl WarmPoolPolicy {
    /// Classic Lambda: no pre-warming, 10-minute keep-alive, idle free.
    pub fn lambda_default() -> Self {
        WarmPoolPolicy {
            pre_warm: 0,
            keep_alive_s: 600.0,
            bill_idle: false,
        }
    }

    /// Scale-to-zero: instances lapse the moment they go idle — every
    /// request pays a cold start, nothing idles.
    pub fn scale_to_zero() -> Self {
        WarmPoolPolicy {
            pre_warm: 0,
            keep_alive_s: 0.0,
            bill_idle: false,
        }
    }

    /// Provisioned concurrency: `count` instances per function pre-warmed
    /// at t = 0, never lapsing, idle time billed at the provisioned rate.
    pub fn provisioned(count: usize) -> Self {
        WarmPoolPolicy {
            pre_warm: count,
            keep_alive_s: f64::INFINITY,
            bill_idle: true,
        }
    }

    /// Lambda-style free keep-alive with a custom horizon.
    pub fn keep_alive(seconds: f64) -> Self {
        WarmPoolPolicy {
            pre_warm: 0,
            keep_alive_s: seconds,
            bill_idle: false,
        }
    }
}

impl std::fmt::Display for WarmPoolPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == WarmPoolPolicy::lambda_default() {
            return f.write_str("lambda-default");
        }
        if *self == WarmPoolPolicy::scale_to_zero() {
            return f.write_str("scale-to-zero");
        }
        if *self == WarmPoolPolicy::provisioned(self.pre_warm) {
            return write!(f, "provisioned({})", self.pre_warm);
        }
        write!(
            f,
            "pre-warm={},keep-alive={}s{}",
            self.pre_warm,
            self.keep_alive_s,
            if self.bill_idle { ",billed" } else { "" }
        )
    }
}

/// The simulated platform.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Active quota preset.
    pub quotas: Quotas,
    /// Active price sheet.
    pub prices: PriceSheet,
    /// Performance-law constants.
    pub perf: PerfModel,
    /// Intermediate object storage.
    pub store: ObjectStore,
    /// Itemized cost ledger.
    pub ledger: CostLedger,
    functions: Vec<DeployedFunction>,
    /// Warm-pool provisioning policy.
    warm_pool: WarmPoolPolicy,
    /// Lambda-level fault injection (disabled by default).
    faults: FaultInjector,
    /// Platform-global invocation counter (fault targeting, metrics).
    invocations: u64,
    /// When set, the next invocation's fault-targeting sequence number
    /// comes from here (incrementing) instead of from `invocations`. Set
    /// by [`Platform::begin_request`] so sharded serving can target
    /// `crash_invocations` by `(request_index << 32) + attempt` regardless
    /// of shard interleaving; `None` (the default) keeps the legacy
    /// platform-global numbering.
    seq_override: Option<u64>,
}

impl Platform {
    /// Creates a platform with the 2020 AWS presets and an S3 store.
    pub fn aws_2020() -> Self {
        Platform::new(
            Quotas::lambda_2020(),
            PriceSheet::aws_2020(),
            PerfModel::default(),
            StoreKind::s3(),
        )
    }

    /// Creates a platform from explicit presets.
    pub fn new(quotas: Quotas, prices: PriceSheet, perf: PerfModel, store: StoreKind) -> Self {
        Platform {
            quotas,
            prices,
            perf,
            store: ObjectStore::new(store),
            ledger: CostLedger::new(),
            functions: Vec::new(),
            warm_pool: WarmPoolPolicy::default(),
            faults: FaultInjector::new(FaultPlan::none()),
            invocations: 0,
            seq_override: None,
        }
    }

    /// Platform with the given warm-pool provisioning policy.
    pub fn with_warm_pool(mut self, policy: WarmPoolPolicy) -> Self {
        self.warm_pool = policy;
        self
    }

    /// The active warm-pool policy.
    pub fn warm_pool(&self) -> WarmPoolPolicy {
        self.warm_pool
    }

    /// Marks the start of one served request with global index
    /// `request_index`, re-keying every per-request randomness source to
    /// that index: the fault-injector stream, the storage failure stream,
    /// and the fault-targeting sequence base (`request_index << 32`, so
    /// [`FaultPlan::crash_invocations`] targets
    /// `(request_index << 32) + attempt` in this mode). After this call,
    /// the request's draws depend only on `(seed, request_index)` — never
    /// on how many draws other requests consumed — which is what lets
    /// sharded serving produce bit-identical results at any thread count.
    ///
    /// With fault injection disabled and a non-flaky store (the defaults),
    /// nothing ever draws, so this call is behaviorally inert. Serial
    /// paths that never call it keep the legacy platform-global stream and
    /// sequence numbering.
    pub fn begin_request(&mut self, request_index: u64) {
        self.seq_override = Some(request_index << 32);
        self.faults.begin_stream(request_index);
        self.store.set_stream(request_index);
    }

    /// Forks an empty shard of this platform: same quotas, prices,
    /// performance law, warm-pool policy, fault plan, and deployed
    /// functions — but fresh (empty) warm pools, ledger, store, and
    /// counters. Shards simulate disjoint request slices and are merged
    /// back with [`Platform::absorb_shard`].
    ///
    /// Shard ledgers skip the itemized audit trail (totals still accrue
    /// and merge exactly) — the serving hot path charges several lines per
    /// request, and only the base platform keeps per-line attribution.
    pub fn fork_empty(&self) -> Platform {
        let mut ledger = CostLedger::new();
        ledger.set_itemized(false);
        Platform {
            quotas: self.quotas,
            prices: self.prices,
            perf: self.perf,
            store: ObjectStore::new(self.store.kind),
            ledger,
            functions: self
                .functions
                .iter()
                .map(|f| DeployedFunction {
                    spec: f.spec.clone(),
                    package_bytes: f.package_bytes,
                    instances: Vec::new(),
                    cold_starts: 0,
                    pre_warmed: 0,
                    idle_warm_s: 0.0,
                    idle_billed_until: 0.0,
                })
                .collect(),
            warm_pool: self.warm_pool,
            faults: FaultInjector::new(self.faults.plan().clone()),
            invocations: 0,
            seq_override: None,
        }
    }

    /// Merges a shard produced by [`Platform::fork_empty`] back into this
    /// platform: warm pools concatenate (re-sorted), cold-start and
    /// invocation counters add, ledgers append, and stores merge by
    /// re-interning (see [`ObjectStore::absorb`]). Absorbing shards in a
    /// fixed order yields a deterministic merged state.
    pub fn absorb_shard(&mut self, shard: Platform) {
        assert_eq!(
            self.functions.len(),
            shard.functions.len(),
            "shards must come from the same deployment"
        );
        for (mine, theirs) in self.functions.iter_mut().zip(shard.functions) {
            // Both pools honor the sorted-free-time discipline, so a
            // stable linear merge (ties keep `mine` first, matching the
            // former extend-and-stable-sort) replaces the O(n log n) sort.
            if mine.instances.is_empty() {
                mine.instances = theirs.instances;
            } else if !theirs.instances.is_empty() {
                let a = std::mem::take(&mut mine.instances);
                let b = theirs.instances;
                let mut merged = Vec::with_capacity(a.len() + b.len());
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    if a[i].total_cmp(&b[j]).is_le() {
                        merged.push(a[i]);
                        i += 1;
                    } else {
                        merged.push(b[j]);
                        j += 1;
                    }
                }
                merged.extend_from_slice(&a[i..]);
                merged.extend_from_slice(&b[j..]);
                mine.instances = merged;
            }
            mine.cold_starts += theirs.cold_starts;
            mine.pre_warmed += theirs.pre_warmed;
            mine.idle_warm_s += theirs.idle_warm_s;
            mine.idle_billed_until = mine.idle_billed_until.max(theirs.idle_billed_until);
        }
        self.invocations += shard.invocations;
        self.ledger.absorb(shard.ledger);
        self.store.absorb(shard.store);
    }

    /// Platform with lambda-level fault injection enabled.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = FaultInjector::new(plan);
        self
    }

    /// Total invocations attempted so far (successes and failures).
    pub fn invocation_count(&self) -> u64 {
        self.invocations
    }

    /// Validates a spec against the quotas without deploying.
    pub fn validate_spec(&self, spec: &FunctionSpec) -> Result<(), DeployError> {
        if !self.quotas.is_valid_memory(spec.memory_mb) {
            return Err(DeployError::InvalidMemory(spec.memory_mb));
        }
        let limit = u64::from(self.quotas.deploy_limit_mb) * MB;
        let got = spec.package_bytes();
        if got > limit {
            return Err(DeployError::PackageTooLarge { got, limit });
        }
        if spec.layer_bytes.len() > self.quotas.max_layers as usize {
            return Err(DeployError::TooManyLayers(spec.layer_bytes.len()));
        }
        Ok(())
    }

    /// Deploys a function; returns its id and the deployment duration
    /// (model upload + function creation — counted in the paper's
    /// end-to-end completion times, §2.2.1).
    pub fn deploy(&mut self, spec: FunctionSpec) -> Result<(FunctionId, f64), DeployError> {
        self.validate_spec(&spec)?;
        // Dependencies are pre-published layers referenced by ARN (paper
        // §2.1): only the model/weights layers upload at deploy time — the
        // largest layer is assumed to be the shared dependency layer when
        // several exist.
        let uploaded: u64 = if spec.layer_bytes.len() > 1 {
            spec.package_bytes() - spec.layer_bytes.iter().copied().max().unwrap_or(0)
        } else {
            spec.package_bytes()
        };
        let duration =
            self.perf.deploy_fixed_s + uploaded as f64 / (self.perf.deploy_upload_mbps * 1e6);
        let id = FunctionId(self.functions.len());
        let package_bytes = spec.package_bytes();
        self.functions.push(DeployedFunction {
            spec,
            package_bytes,
            instances: Vec::new(),
            cold_starts: 0,
            pre_warmed: 0,
            idle_warm_s: 0.0,
            idle_billed_until: 0.0,
        });
        Ok((id, duration))
    }

    /// Pre-warms `count` instances of every deployed function at t = 0
    /// (warm-pool policies with `pre_warm > 0`; the sharded serving engine
    /// calls this per shard with the lane's share). Pre-warmed instances
    /// are idle-from-zero sandboxes: they serve warm without counting as
    /// cold starts, and their idle time accrues like any other instance's.
    pub fn pre_warm(&mut self, count: usize) {
        if count == 0 {
            return;
        }
        for f in &mut self.functions {
            f.instances.extend(std::iter::repeat_n(0.0, count));
            f.instances.sort_by(f64::total_cmp);
            f.pre_warmed += count;
        }
    }

    /// Instances pre-warmed across all functions (metrics).
    pub fn pre_warmed_total(&self) -> usize {
        self.functions.iter().map(|f| f.pre_warmed).sum()
    }

    /// Settles idle warm-pool time up to `until`: drains the idle seconds
    /// already consumed by warm reuses, adds each still-pooled instance's
    /// idle tail (capped by the keep-alive horizon), and advances a
    /// per-function watermark so repeated settlements never double-count.
    /// When the policy bills idle time, the settled seconds are charged as
    /// [`CostItem::WarmPoolIdle`] at the provisioned-capacity rate.
    /// Returns `(idle_seconds, dollars)`.
    pub fn settle_warm_pool(&mut self, until: f64) -> (f64, f64) {
        let policy = self.warm_pool;
        let rate = self.prices.lambda_provisioned_gb_second;
        let mut idle_total = 0.0;
        let mut dollars = 0.0;
        let mut charges: Vec<(FunctionId, f64)> = Vec::new();
        for (i, f) in self.functions.iter_mut().enumerate() {
            let mut idle = std::mem::take(&mut f.idle_warm_s);
            for &busy_until in &f.instances {
                let warm_until = if policy.keep_alive_s.is_finite() {
                    busy_until + policy.keep_alive_s
                } else {
                    f64::INFINITY
                };
                let from = busy_until.max(f.idle_billed_until);
                let to = until.min(warm_until);
                if to > from {
                    idle += to - from;
                }
            }
            f.idle_billed_until = f.idle_billed_until.max(until);
            if idle > 0.0 {
                idle_total += idle;
                if policy.bill_idle {
                    let c = rate * idle * (f64::from(f.spec.memory_mb) / 1024.0);
                    dollars += c;
                    charges.push((FunctionId(i), c));
                }
            }
        }
        for (id, c) in charges {
            self.ledger.charge(CostItem::WarmPoolIdle, c, id);
        }
        (idle_total, dollars)
    }

    /// Deployed function count.
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// The spec of a deployed function.
    pub fn spec(&self, id: FunctionId) -> Option<&FunctionSpec> {
        self.functions.get(id.0).map(|f| &f.spec)
    }

    /// Cold starts a function has incurred (instances spun up).
    pub fn cold_starts(&self, id: FunctionId) -> usize {
        self.functions.get(id.0).map_or(0, |f| f.cold_starts)
    }

    /// Idle warm seconds accrued by warm reuses so far, across all
    /// functions: the gap between an instance going free and its next
    /// warm invocation, summed over every reuse. Unlike
    /// [`Platform::settle_warm_pool`] this is a non-draining read — the
    /// pipelined serving mode reads it to show how much less its stations
    /// let warm containers sit idle than the sequential chain does.
    pub fn warm_idle_accrued(&self) -> f64 {
        self.functions.iter().map(|f| f.idle_warm_s).sum()
    }

    /// Live container instances of a function.
    pub fn instance_count(&self, id: FunctionId) -> usize {
        self.functions.get(id.0).map_or(0, |f| f.instances.len())
    }

    /// Invokes function `id` starting at absolute time `start`.
    ///
    /// Sequencing inside the invocation: cold start → import → weight load
    /// → storage reads → compute → storage writes → response. Warm
    /// containers (< 10 min since last finish) skip cold/import/load, as a
    /// kept-alive Lambda sandbox with a cached model would.
    ///
    /// Failures are billed like real Lambda bills them: the returned
    /// [`FailedInvocation`] charges GB-seconds for the time the sandbox
    /// actually consumed before dying (a timed-out invocation pays for the
    /// whole timeout window) plus the request fee, and the instance pool
    /// reflects the occupied sandbox.
    pub fn invoke(
        &mut self,
        id: FunctionId,
        start: f64,
        work: &InvocationWork,
    ) -> Result<InvocationOutcome, FailedInvocation> {
        let Some(func) = self.functions.get_mut(id.0) else {
            return Err(FailedInvocation::unbilled(
                InvokeError::NoSuchFunction,
                start,
            ));
        };
        // Scalars the rest of the invocation needs, copied out so the hot
        // path never clones the spec (name + layer vector allocations).
        let memory_mb = func.spec.memory_mb;
        let package_bytes = func.package_bytes;
        let keep_alive_s = self.warm_pool.keep_alive_s;
        // Instance selection: reuse the most-recently-idle warm instance
        // that is free at `start` and within keep-alive; otherwise a fresh
        // cold instance handles this (possibly concurrent) request. The
        // pool is sorted by `busy_until`, so the candidate is the largest
        // entry ≤ `start` — one binary search, no linear scan. The chosen
        // sandbox leaves the pool here and rejoins at its new `busy_until`
        // when the invocation resolves.
        let idle = func.instances.partition_point(|&b| b <= start);
        let warm = idle > 0 && start - func.instances[idle - 1] <= keep_alive_s;
        if warm {
            let busy_until = func.instances.remove(idle - 1);
            // The reused instance idled from going free to this reuse —
            // warm-pool time the policy may bill at settlement.
            let idled_from = busy_until.max(func.idle_billed_until);
            if start > idled_from {
                func.idle_warm_s += start - idled_from;
            }
        }
        let seq = match self.seq_override.as_mut() {
            Some(s) => {
                let v = *s;
                *s += 1;
                v
            }
            None => self.invocations,
        };
        self.invocations += 1;
        let fault = self.faults.draw(seq, !warm);

        let perf = LambdaPerf::new(&self.perf, memory_mb);
        let footprint_mb = self.perf.runtime_footprint_mb + work.resident_bytes as f64 / MB as f64;
        let mut b = DurationBreakdown::default();
        if !warm {
            b.cold_s = perf.cold_start(package_bytes);
        }
        if fault == Some(FaultKind::ColdStartFailure) {
            // The sandbox dies during creation: nothing joins the pool and
            // nothing warms up, but the creation time is still billed.
            let consumed = b.total();
            return Err(self.fail(
                id,
                memory_mb,
                start,
                b,
                consumed,
                false,
                false,
                0.0,
                InvokeError::ColdStartFailed,
            ));
        }
        if perf.is_oom(footprint_mb) {
            // Dies loading the model graph into memory: the cold phases ran.
            if !warm {
                b.import_s = perf.cpu_time(perf.import_work(), footprint_mb);
                b.load_s = perf.cpu_time(perf.load_work(work.load_bytes), footprint_mb);
            }
            let consumed = b.total();
            return Err(self.fail(
                id,
                memory_mb,
                start,
                b,
                consumed,
                warm,
                true,
                0.0,
                InvokeError::OutOfMemory {
                    footprint_mb,
                    memory_mb,
                },
            ));
        }
        let tmp_limit = u64::from(self.quotas.tmp_limit_mb) * MB;
        if work.tmp_bytes > tmp_limit {
            // Dies staging weight files to /tmp, before the load finishes.
            if !warm {
                b.import_s = perf.cpu_time(perf.import_work(), footprint_mb);
            }
            let consumed = b.total();
            return Err(self.fail(
                id,
                memory_mb,
                start,
                b,
                consumed,
                warm,
                true,
                0.0,
                InvokeError::TmpExceeded {
                    got: work.tmp_bytes,
                    limit: tmp_limit,
                },
            ));
        }
        if !warm {
            b.import_s = perf.cpu_time(perf.import_work(), footprint_mb);
            b.load_s = perf.cpu_time(perf.load_work(work.load_bytes), footprint_mb);
        }
        // Storage reads (charged fees; missing keys abort, having consumed
        // everything up to and including the failed lookups).
        let mut fees = 0.0;
        let mut storage_retry_s = 0.0;
        let latency = self.store.kind.request_latency_s;
        for &key in &work.reads {
            match self.store.get_id(key, &self.prices, &mut self.ledger) {
                Ok(op) => {
                    b.transfer_s += op.duration_s;
                    storage_retry_s += f64::from(op.attempts - 1) * latency;
                    fees += op.fee;
                }
                Err(e) => {
                    let (reason, burned) = Self::storage_failure(e, latency);
                    b.transfer_s += burned;
                    let consumed = b.total();
                    return Err(
                        self.fail(id, memory_mb, start, b, consumed, warm, true, fees, reason)
                    );
                }
            }
        }
        let full_compute = perf.cpu_time(perf.compute_work(work.flops), footprint_mb);
        match fault {
            Some(FaultKind::Crash { compute_fraction }) => {
                // The handler crashes mid-compute; no writes happen.
                b.compute_s = full_compute * compute_fraction;
                let consumed = b.total();
                return Err(self.fail(
                    id,
                    memory_mb,
                    start,
                    b,
                    consumed,
                    warm,
                    true,
                    fees,
                    InvokeError::Crashed {
                        duration_s: consumed,
                    },
                ));
            }
            Some(FaultKind::Timeout) => {
                // The handler hangs after its reads; the platform kills it
                // at the timeout and bills the whole window.
                b.compute_s = (self.quotas.timeout_s - b.total()).max(0.0);
                let consumed = self.quotas.timeout_s;
                return Err(self.fail(
                    id,
                    memory_mb,
                    start,
                    b,
                    consumed,
                    warm,
                    true,
                    fees,
                    InvokeError::Timeout {
                        duration_s: consumed,
                    },
                ));
            }
            _ => b.compute_s = full_compute,
        }
        // Storage writes happen after compute; objects become visible at
        // the write-completion instant.
        let pre_write = start + b.cold_s + b.import_s + b.load_s + b.transfer_s + b.compute_s;
        let mut write_s = 0.0;
        for &(key, bytes) in &work.writes {
            match self.store.put_id(
                key,
                bytes,
                pre_write + write_s,
                &self.prices,
                &mut self.ledger,
            ) {
                Ok(op) => {
                    write_s += op.duration_s;
                    storage_retry_s += f64::from(op.attempts - 1) * latency;
                    fees += op.fee;
                }
                Err(e) => {
                    let (reason, burned) = Self::storage_failure(e, latency);
                    b.transfer_s += write_s + burned;
                    let consumed = b.total();
                    return Err(
                        self.fail(id, memory_mb, start, b, consumed, warm, true, fees, reason)
                    );
                }
            }
        }
        b.transfer_s += write_s;
        b.fixed_s = self.perf.fixed_overhead_s;

        let duration = b.total();
        if duration > self.quotas.timeout_s {
            // Killed at the timeout; the timeout window is billed in full.
            return Err(self.fail(
                id,
                memory_mb,
                start,
                b,
                self.quotas.timeout_s,
                warm,
                true,
                fees,
                InvokeError::Timeout {
                    duration_s: duration,
                },
            ));
        }

        let billed = self.prices.billed_duration(duration);
        let compute_cost = self.prices.lambda_compute_cost(duration, memory_mb);
        self.ledger
            .charge(CostItem::LambdaCompute, compute_cost, id);
        self.ledger
            .charge(CostItem::LambdaRequest, self.prices.lambda_request, id);

        self.functions[id.0].pool_insert(start + duration, warm);
        Ok(InvocationOutcome {
            start,
            end: start + duration,
            breakdown: b,
            billed_s: billed,
            dollars: compute_cost + self.prices.lambda_request + fees,
            warm,
            storage_retry_s,
        })
    }

    /// Maps a storage error to its invocation failure reason plus the
    /// client-side seconds the failed lookups burned.
    fn storage_failure(e: crate::storage::StorageError, latency_s: f64) -> (InvokeError, f64) {
        match e {
            crate::storage::StorageError::NotFound(k) => (InvokeError::MissingInput(k), latency_s),
            crate::storage::StorageError::Unavailable { key, attempts } => (
                InvokeError::StorageUnavailable(key),
                f64::from(attempts) * latency_s,
            ),
        }
    }

    /// Bills a failed invocation — compute for the consumed time, the
    /// request fee, storage fees already incurred — and occupies the
    /// sandbox in the instance pool (unless creation itself failed).
    #[allow(clippy::too_many_arguments)]
    fn fail(
        &mut self,
        id: FunctionId,
        memory_mb: u32,
        start: f64,
        breakdown: DurationBreakdown,
        consumed_s: f64,
        warm: bool,
        sandbox_created: bool,
        fees: f64,
        reason: InvokeError,
    ) -> FailedInvocation {
        let billed = self.prices.billed_duration(consumed_s);
        let compute_cost = self.prices.lambda_compute_cost(consumed_s, memory_mb);
        if compute_cost > 0.0 {
            // The attribution string only materializes on itemized ledgers
            // — failures are off the hot path, but shards skip it anyway.
            let note = if self.ledger.is_itemized() {
                Note::Text(format!(
                    "{} [failed: {reason}]",
                    self.functions[id.0].spec.name
                ))
            } else {
                Note::Label("failed invocation")
            };
            self.ledger
                .charge(CostItem::LambdaCompute, compute_cost, note);
        }
        self.ledger
            .charge(CostItem::LambdaRequest, self.prices.lambda_request, id);
        let end = start + consumed_s;
        if sandbox_created {
            // Lambda reuses sandboxes after handler errors and timeouts —
            // the runtime restarts inside the same (billable) instance.
            self.functions[id.0].pool_insert(end, warm);
        }
        FailedInvocation {
            reason,
            start,
            end,
            breakdown,
            billed_s: billed,
            dollars: compute_cost + self.prices.lambda_request + fees,
            warm,
        }
    }

    /// Settles at-rest storage charges up to `until`; call once per job.
    pub fn settle_storage(&mut self, until: f64) -> f64 {
        let prices = self.prices;
        self.store.settle_storage(until, &prices, &mut self.ledger)
    }

    /// Total dollars accrued so far.
    pub fn total_cost(&self) -> f64 {
        self.ledger.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(mem: u32, weights_mb: u64) -> FunctionSpec {
        FunctionSpec {
            name: format!("f{mem}"),
            memory_mb: mem,
            code_bytes: MB,
            layer_bytes: vec![169 * MB, weights_mb * MB],
        }
    }

    #[test]
    fn deploy_enforces_package_limit() {
        let mut p = Platform::aws_2020();
        // 1 + 169 + 98 = 268 MB > 250 MB: the paper's Table 1 ResNet50 case.
        let err = p.deploy(spec(1024, 98)).unwrap_err();
        assert!(matches!(err, DeployError::PackageTooLarge { .. }));
        // 1 + 169 + 17 = 187 MB: MobileNet fits.
        assert!(p.deploy(spec(1024, 17)).is_ok());
    }

    #[test]
    fn deploy_enforces_memory_blocks_and_layers() {
        let mut p = Platform::aws_2020();
        let mut s = spec(1000, 10);
        s.memory_mb = 1000; // not a 64 MB-aligned block
        assert!(matches!(
            p.deploy(s).unwrap_err(),
            DeployError::InvalidMemory(1000)
        ));
        let mut s = spec(1024, 10);
        s.layer_bytes = vec![MB; 6];
        assert!(matches!(
            p.deploy(s).unwrap_err(),
            DeployError::TooManyLayers(6)
        ));
    }

    #[test]
    fn invoke_bills_compute_and_request() {
        let mut p = Platform::aws_2020();
        let (id, _) = p.deploy(spec(1024, 17)).unwrap();
        let work = InvocationWork {
            load_bytes: 17 * MB,
            flops: 1_140_000_000,
            resident_bytes: 40 * MB,
            tmp_bytes: 20 * MB,
            ..Default::default()
        };
        let out = p.invoke(id, 0.0, &work).unwrap();
        assert!(!out.warm);
        assert!(out.duration() > 1.0 && out.duration() < 20.0);
        let expect = p.prices.lambda_compute_cost(out.duration(), 1024) + p.prices.lambda_request;
        assert!((out.dollars - expect).abs() < 1e-12);
        assert!(p.ledger.total_of(CostItem::LambdaCompute) > 0.0);
    }

    #[test]
    fn warm_invocations_skip_cold_phases() {
        let mut p = Platform::aws_2020();
        let (id, _) = p.deploy(spec(1024, 17)).unwrap();
        let work = InvocationWork {
            load_bytes: 17 * MB,
            flops: 1_000_000_000,
            resident_bytes: 40 * MB,
            ..Default::default()
        };
        let first = p.invoke(id, 0.0, &work).unwrap();
        let second = p.invoke(id, first.end + 1.0, &work).unwrap();
        assert!(second.warm);
        assert_eq!(second.breakdown.import_s, 0.0);
        assert_eq!(second.breakdown.load_s, 0.0);
        assert!(second.duration() < first.duration());
        // Cold again after the keep-alive lapses.
        let keep_alive_s = p.warm_pool().keep_alive_s;
        let third = p
            .invoke(id, second.end + keep_alive_s + 1.0, &work)
            .unwrap();
        assert!(!third.warm);
    }

    #[test]
    fn concurrent_invocations_scale_out_cold() {
        // Two requests at the same instant: Lambda spins two instances,
        // both cold; a third after they finish rides one of them warm.
        let mut p = Platform::aws_2020();
        let (id, _) = p.deploy(spec(1024, 17)).unwrap();
        let work = InvocationWork {
            load_bytes: 17 * MB,
            flops: 1_000_000_000,
            resident_bytes: 40 * MB,
            ..Default::default()
        };
        let a = p.invoke(id, 0.0, &work).unwrap();
        let b = p.invoke(id, 0.0, &work).unwrap();
        assert!(!a.warm && !b.warm);
        assert_eq!(p.cold_starts(id), 2);
        assert_eq!(p.instance_count(id), 2);
        let c = p.invoke(id, a.end.max(b.end) + 0.5, &work).unwrap();
        assert!(c.warm);
        assert_eq!(p.cold_starts(id), 2);
    }

    #[test]
    fn overlapping_chain_requests_do_not_share_busy_instances() {
        let mut p = Platform::aws_2020();
        let (id, _) = p.deploy(spec(1024, 10)).unwrap();
        let work = InvocationWork {
            load_bytes: 10 * MB,
            flops: 3_000_000_000,
            resident_bytes: 30 * MB,
            ..Default::default()
        };
        let first = p.invoke(id, 0.0, &work).unwrap();
        // Second request arrives while the first instance is busy.
        let second = p.invoke(id, first.end - 1.0, &work).unwrap();
        assert!(!second.warm, "busy instance must not be reused");
        assert_eq!(p.instance_count(id), 2);
    }

    #[test]
    fn chain_via_storage() {
        let mut p = Platform::aws_2020();
        let (f1, _) = p.deploy(spec(1024, 10)).unwrap();
        let (f2, _) = p.deploy(spec(1024, 10)).unwrap();
        let inter = p.store.intern("inter/0");
        let w1 = InvocationWork {
            load_bytes: 10 * MB,
            flops: 500_000_000,
            resident_bytes: 30 * MB,
            writes: vec![(inter, 2 * MB)],
            ..Default::default()
        };
        let o1 = p.invoke(f1, 0.0, &w1).unwrap();
        let w2 = InvocationWork {
            load_bytes: 10 * MB,
            flops: 500_000_000,
            resident_bytes: 30 * MB,
            reads: vec![inter],
            ..Default::default()
        };
        let o2 = p.invoke(f2, o1.end, &w2).unwrap();
        assert!(o2.end > o1.end);
        assert!(p.ledger.total_of(CostItem::StoragePut) > 0.0);
        assert!(p.ledger.total_of(CostItem::StorageGet) > 0.0);
        let settled = p.settle_storage(o2.end);
        assert!(settled >= 0.0);
    }

    #[test]
    fn missing_input_fails() {
        let mut p = Platform::aws_2020();
        let (id, _) = p.deploy(spec(1024, 10)).unwrap();
        let never = p.store.intern("never-written");
        let w = InvocationWork {
            reads: vec![never],
            ..Default::default()
        };
        let failed = p.invoke(id, 0.0, &w).unwrap_err();
        assert!(matches!(failed.reason, InvokeError::MissingInput(_)));
        // The sandbox ran cold start, import and load before discovering
        // the missing input — that consumed time is billed.
        assert!(failed.duration() > 0.0);
        assert!(failed.dollars > p.prices.lambda_request);
        assert!(p.ledger.total_of(CostItem::LambdaCompute) > 0.0);
    }

    #[test]
    fn tmp_limit_enforced() {
        let mut p = Platform::aws_2020();
        let (id, _) = p.deploy(spec(3008, 10)).unwrap();
        let w = InvocationWork {
            tmp_bytes: 600 * MB,
            ..Default::default()
        };
        assert!(matches!(
            p.invoke(id, 0.0, &w).unwrap_err().reason,
            InvokeError::TmpExceeded { .. }
        ));
    }

    #[test]
    fn oom_at_tiny_memory() {
        let mut p = Platform::aws_2020();
        let (id, _) = p.deploy(spec(128, 10)).unwrap();
        let w = InvocationWork {
            load_bytes: 10 * MB,
            flops: 1_000_000,
            resident_bytes: 30 * MB,
            ..Default::default()
        };
        assert!(matches!(
            p.invoke(id, 0.0, &w).unwrap_err().reason,
            InvokeError::OutOfMemory { .. }
        ));
    }

    #[test]
    fn injected_timeout_bills_full_window() {
        let mut p = Platform::aws_2020().with_fault_plan(FaultPlan {
            timeout_rate: 1.0,
            ..FaultPlan::default()
        });
        let (id, _) = p.deploy(spec(1024, 17)).unwrap();
        let work = InvocationWork {
            load_bytes: 17 * MB,
            flops: 1_000_000_000,
            resident_bytes: 40 * MB,
            ..Default::default()
        };
        let failed = p.invoke(id, 0.0, &work).unwrap_err();
        assert!(matches!(failed.reason, InvokeError::Timeout { .. }));
        assert!((failed.duration() - p.quotas.timeout_s).abs() < 1e-9);
        assert!((failed.billed_s - p.prices.billed_duration(p.quotas.timeout_s)).abs() < 1e-12);
        let expect =
            p.prices.lambda_compute_cost(p.quotas.timeout_s, 1024) + p.prices.lambda_request;
        assert!((failed.dollars - expect).abs() < 1e-12);
        // The hung sandbox occupies the pool until the kill.
        assert_eq!(p.instance_count(id), 1);
    }

    #[test]
    fn injected_crash_bills_partial_compute() {
        let mut p = Platform::aws_2020().with_fault_plan(FaultPlan {
            crash_invocations: vec![0],
            ..FaultPlan::default()
        });
        let (id, _) = p.deploy(spec(1024, 17)).unwrap();
        let work = InvocationWork {
            load_bytes: 17 * MB,
            flops: 2_000_000_000,
            resident_bytes: 40 * MB,
            ..Default::default()
        };
        let failed = p.invoke(id, 0.0, &work).unwrap_err();
        assert!(matches!(failed.reason, InvokeError::Crashed { .. }));
        // Crashed halfway through compute: strictly between the no-compute
        // and full-compute durations, and billed strictly positive.
        let mut clean = Platform::aws_2020();
        let (cid, _) = clean.deploy(spec(1024, 17)).unwrap();
        let ok = clean.invoke(cid, 0.0, &work).unwrap();
        assert!(failed.duration() > 0.0 && failed.duration() < ok.duration());
        assert!(failed.dollars > 0.0);
        // A retry on the same platform rides the surviving sandbox warm.
        let retry = p.invoke(id, failed.end + 0.1, &work).unwrap();
        assert!(retry.warm);
    }

    #[test]
    fn cold_start_failure_leaves_no_instance() {
        let mut p = Platform::aws_2020().with_fault_plan(FaultPlan {
            cold_start_failure_rate: 1.0,
            ..FaultPlan::default()
        });
        let (id, _) = p.deploy(spec(1024, 17)).unwrap();
        let work = InvocationWork {
            load_bytes: 17 * MB,
            flops: 1_000_000_000,
            resident_bytes: 40 * MB,
            ..Default::default()
        };
        let failed = p.invoke(id, 0.0, &work).unwrap_err();
        assert_eq!(failed.reason, InvokeError::ColdStartFailed);
        assert_eq!(p.instance_count(id), 0);
        assert_eq!(p.cold_starts(id), 0);
        // Only sandbox-creation time was consumed; the request fee applies.
        assert!(failed.duration() > 0.0);
        assert!(failed.dollars >= p.prices.lambda_request);
    }

    #[test]
    fn sorted_pool_picks_most_recently_idle() {
        // Three instances idle at 1.0, 5.0 and 9.0; a request at 7.0 must
        // reuse the 5.0 one (most recently idle among the free), leaving
        // the others untouched.
        let mut p = Platform::aws_2020();
        let (id, _) = p.deploy(spec(1024, 17)).unwrap();
        let work = InvocationWork {
            load_bytes: 17 * MB,
            flops: 1_000_000_000,
            resident_bytes: 40 * MB,
            ..Default::default()
        };
        // Spin up three concurrent (cold) instances.
        let ends: Vec<f64> = (0..3)
            .map(|_| p.invoke(id, 0.0, &work).unwrap().end)
            .collect();
        assert_eq!(p.cold_starts(id), 3);
        // All idle now; a request just after the first end must ride warm
        // without creating a fourth instance.
        let t = ends[0] + 0.1;
        let out = p.invoke(id, t, &work).unwrap();
        assert!(out.warm);
        assert_eq!(p.instance_count(id), 3);
        assert_eq!(p.cold_starts(id), 3);
    }

    #[test]
    fn scale_to_zero_never_serves_warm() {
        let mut p = Platform::aws_2020().with_warm_pool(WarmPoolPolicy::scale_to_zero());
        let (id, _) = p.deploy(spec(1024, 17)).unwrap();
        let work = InvocationWork {
            load_bytes: 17 * MB,
            flops: 1_000_000_000,
            resident_bytes: 40 * MB,
            ..Default::default()
        };
        let first = p.invoke(id, 0.0, &work).unwrap();
        let second = p.invoke(id, first.end + 1.0, &work).unwrap();
        assert!(!second.warm, "scale-to-zero must cold-start every request");
        assert_eq!(p.cold_starts(id), 2);
        // Nothing idles under this policy.
        let (idle, dollars) = p.settle_warm_pool(second.end + 100.0);
        assert_eq!(idle, 0.0);
        assert_eq!(dollars, 0.0);
    }

    #[test]
    fn provisioned_pool_serves_warm_and_bills_idle() {
        let mut p = Platform::aws_2020().with_warm_pool(WarmPoolPolicy::provisioned(2));
        let (id, _) = p.deploy(spec(1024, 17)).unwrap();
        p.pre_warm(p.warm_pool().pre_warm);
        assert_eq!(p.pre_warmed_total(), 2);
        assert_eq!(p.instance_count(id), 2);
        let work = InvocationWork {
            load_bytes: 17 * MB,
            flops: 1_000_000_000,
            resident_bytes: 40 * MB,
            ..Default::default()
        };
        // The very first request rides a pre-warmed instance.
        let out = p.invoke(id, 5.0, &work).unwrap();
        assert!(out.warm, "pre-warmed instance must serve warm");
        assert_eq!(p.cold_starts(id), 0);
        // Idle time: the reused instance idled 0→5; the untouched one and
        // the reused one idle up to the settle instant.
        let until = out.end + 10.0;
        let (idle, dollars) = p.settle_warm_pool(until);
        let expect_idle = 5.0 + until + (until - out.end);
        assert!((idle - expect_idle).abs() < 1e-9, "{idle} vs {expect_idle}");
        let expect_cost = p.prices.lambda_provisioned_gb_second * expect_idle * 1.0;
        assert!((dollars - expect_cost).abs() < 1e-12);
        assert!((p.ledger.total_of(CostItem::WarmPoolIdle) - dollars).abs() < 1e-15);
        // Settling the same instant again double-bills nothing.
        let (again, d2) = p.settle_warm_pool(until);
        assert_eq!(again, 0.0);
        assert_eq!(d2, 0.0);
    }

    #[test]
    fn keep_alive_horizon_caps_settled_idle() {
        // Free keep-alive of 60 s: an instance idle since t=10 settled at
        // t=1000 accrues only 60 idle seconds (then it lapsed), unbilled.
        let mut p = Platform::aws_2020().with_warm_pool(WarmPoolPolicy::keep_alive(60.0));
        let (id, _) = p.deploy(spec(1024, 17)).unwrap();
        let work = InvocationWork {
            load_bytes: 17 * MB,
            flops: 1_000_000_000,
            resident_bytes: 40 * MB,
            ..Default::default()
        };
        let out = p.invoke(id, 0.0, &work).unwrap();
        let (idle, dollars) = p.settle_warm_pool(out.end + 1000.0);
        assert!((idle - 60.0).abs() < 1e-9, "idle {idle}");
        assert_eq!(dollars, 0.0, "free keep-alive bills nothing");
        assert_eq!(p.cold_starts(id), 1);
    }

    #[test]
    fn warm_pool_policy_labels() {
        assert_eq!(
            WarmPoolPolicy::lambda_default().to_string(),
            "lambda-default"
        );
        assert_eq!(WarmPoolPolicy::scale_to_zero().to_string(), "scale-to-zero");
        assert_eq!(WarmPoolPolicy::provisioned(4).to_string(), "provisioned(4)");
        assert_eq!(
            WarmPoolPolicy::keep_alive(120.0).to_string(),
            "pre-warm=0,keep-alive=120s"
        );
    }

    #[test]
    fn fork_and_absorb_reconstruct_serial_totals() {
        // Two requests served on two shards, merged, must equal the same
        // two requests on one platform: dollars, cold starts, instances.
        let work = InvocationWork {
            load_bytes: 17 * MB,
            flops: 1_000_000_000,
            resident_bytes: 40 * MB,
            ..Default::default()
        };
        let mut serial = Platform::aws_2020();
        let (id, _) = serial.deploy(spec(1024, 17)).unwrap();
        serial.invoke(id, 0.0, &work).unwrap();
        serial.invoke(id, 0.0, &work).unwrap();

        let mut base = Platform::aws_2020();
        let (idb, _) = base.deploy(spec(1024, 17)).unwrap();
        let mut s1 = base.fork_empty();
        let mut s2 = base.fork_empty();
        s1.invoke(idb, 0.0, &work).unwrap();
        s2.invoke(idb, 0.0, &work).unwrap();
        base.absorb_shard(s1);
        base.absorb_shard(s2);
        assert_eq!(base.cold_starts(idb), serial.cold_starts(id));
        assert_eq!(base.instance_count(idb), serial.instance_count(id));
        assert_eq!(base.invocation_count(), serial.invocation_count());
        assert_eq!(base.total_cost(), serial.total_cost());
    }

    #[test]
    fn begin_request_keys_fault_streams_by_request_index() {
        // The same request index draws the same fates regardless of what
        // other requests ran first — the shard-determinism invariant.
        let plan = FaultPlan::uniform(0.4, 21);
        let work = InvocationWork {
            load_bytes: 17 * MB,
            flops: 1_000_000_000,
            resident_bytes: 40 * MB,
            ..Default::default()
        };
        let run = |warmups: u64| -> Vec<bool> {
            let mut p = Platform::aws_2020().with_fault_plan(plan.clone());
            let (id, _) = p.deploy(spec(1024, 17)).unwrap();
            for r in 0..warmups {
                p.begin_request(r);
                let _ = p.invoke(id, 0.0, &work);
            }
            p.begin_request(9);
            (0..5)
                .map(|i| p.invoke(id, i as f64 * 2000.0, &work).is_ok())
                .collect()
        };
        assert_eq!(run(0), run(7));
    }

    #[test]
    fn targeted_crash_addresses_request_and_attempt_in_stream_mode() {
        // crash_invocations entry (index << 32) + 1 must hit exactly the
        // second invocation of request `index`, no other.
        let plan = FaultPlan {
            crash_invocations: vec![(3 << 32) + 1],
            ..FaultPlan::default()
        };
        let work = InvocationWork {
            load_bytes: 17 * MB,
            flops: 1_000_000_000,
            resident_bytes: 40 * MB,
            ..Default::default()
        };
        let mut p = Platform::aws_2020().with_fault_plan(plan);
        let (id, _) = p.deploy(spec(1024, 17)).unwrap();
        p.begin_request(2);
        assert!(p.invoke(id, 0.0, &work).is_ok());
        assert!(p.invoke(id, 0.0, &work).is_ok());
        p.begin_request(3);
        assert!(p.invoke(id, 0.0, &work).is_ok());
        let failed = p.invoke(id, 0.0, &work).unwrap_err();
        assert!(matches!(failed.reason, InvokeError::Crashed { .. }));
        assert!(p.invoke(id, 0.0, &work).is_ok());
    }

    #[test]
    fn fault_free_plan_is_bit_identical_to_no_plan() {
        let work = InvocationWork {
            load_bytes: 17 * MB,
            flops: 1_000_000_000,
            resident_bytes: 40 * MB,
            ..Default::default()
        };
        let mut a = Platform::aws_2020();
        let mut b = Platform::aws_2020().with_fault_plan(FaultPlan::none());
        let (ia, _) = a.deploy(spec(1024, 17)).unwrap();
        let (ib, _) = b.deploy(spec(1024, 17)).unwrap();
        let oa = a.invoke(ia, 0.0, &work).unwrap();
        let ob = b.invoke(ib, 0.0, &work).unwrap();
        assert_eq!(oa.end, ob.end);
        assert_eq!(oa.dollars, ob.dollars);
    }
}
