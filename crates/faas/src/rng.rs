//! Small deterministic PRNG for simulator workloads.
//!
//! The baselines and load generator only need reproducible, reasonably
//! well-mixed streams — not cryptographic quality — so the workspace ships
//! this splitmix64-seeded xorshift generator instead of pulling in an
//! external crate.

/// A seedable 64-bit PRNG (splitmix64 seeding, xorshift64* stream).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        // One splitmix64 round decorrelates small consecutive seeds.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        SmallRng {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    /// Creates a generator for substream `stream` of `seed`: the same
    /// `(seed, stream)` pair always yields the same draws, independent of
    /// any other stream's consumption. The sharded serving engine keys one
    /// stream per request index so fault/storage draws never depend on the
    /// interleaving of requests across worker shards.
    pub fn seed_from_stream(seed: u64, stream: u64) -> Self {
        // Weyl-sequence offset spreads consecutive stream ids across the
        // seed space before the splitmix round in `seed_from_u64`.
        Self::seed_from_u64(seed ^ stream.wrapping_mul(0xa076_1d64_78bd_642f))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A float uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of the stream.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A float uniform in `(0, 1]` (never zero — safe under `ln`).
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    /// Panics when `n` is 0.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_f64() * n as f64) as usize % n
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn streams_are_independent_and_reproducible() {
        let mut a = SmallRng::seed_from_stream(7, 3);
        let mut b = SmallRng::seed_from_stream(7, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_stream(7, 4);
        let mut d = SmallRng::seed_from_stream(8, 3);
        assert_ne!(a.next_u64(), c.next_u64());
        assert_ne!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn floats_in_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn open_interval_never_zero() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!(rng.next_f64_open() > 0.0);
        }
    }

    #[test]
    fn below_covers_all_buckets() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.range_inclusive(2, 5);
            assert!((2..=5).contains(&v));
        }
    }
}
