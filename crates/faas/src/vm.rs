//! VM instances — the SageMaker side of the paper's comparison.
//!
//! Sage 1 serves from an `ml.t2.medium` notebook instance; Sage 2 submits
//! from the notebook and hosts on an `ml.m4.xlarge` endpoint whose creation
//! dominates its completion time (paper Table 4: 400–460 s).

use crate::ledger::{CostItem, CostLedger};

/// An instance type with pricing and relative performance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmType {
    /// Instance-type name.
    pub name: &'static str,
    /// On-demand price, $ per hour.
    pub hourly: f64,
    /// CPU speed relative to one full Lambda vCPU (1.0 = equal).
    pub perf_factor: f64,
    /// Time to launch/boot this instance when provisioned on demand.
    pub launch_s: f64,
}

impl VmType {
    /// `ml.t2.medium` — the paper's Sage 1 notebook instance.
    pub fn ml_t2_medium() -> Self {
        VmType {
            name: "ml.t2.medium",
            hourly: 0.0582,
            // Burstable 2-vCPU instance; sustained single-thread inference
            // runs below a Lambda's full share.
            perf_factor: 0.7,
            launch_s: 0.0, // notebook assumed already running (paper setup)
        }
    }

    /// `ml.m4.xlarge` — the paper's Sage 2 hosting instance. Endpoint
    /// creation + model deployment dominates (Table 4).
    pub fn ml_m4_xlarge() -> Self {
        VmType {
            name: "ml.m4.xlarge",
            hourly: 0.28,
            perf_factor: 1.1,
            launch_s: 390.0,
        }
    }

    /// A small EC2 driver instance (Serfer's architecture, §4).
    pub fn ec2_driver() -> Self {
        VmType {
            name: "t2.medium",
            hourly: 0.0464,
            perf_factor: 0.7,
            launch_s: 0.0,
        }
    }
}

/// A running instance accruing cost over time.
#[derive(Debug, Clone, Copy)]
pub struct VmInstance {
    /// The instance type.
    pub vm: VmType,
    /// When it was started (simulation seconds).
    pub started_at: f64,
}

impl VmInstance {
    /// Starts an instance at `now`; the caller waits `launch_s` before use.
    pub fn start(vm: VmType, now: f64) -> Self {
        VmInstance {
            vm,
            started_at: now,
        }
    }

    /// Time at which the instance becomes usable.
    pub fn ready_at(&self) -> f64 {
        self.started_at + self.vm.launch_s
    }

    /// Seconds to execute `cpu_seconds` of full-vCPU work on this VM.
    pub fn cpu_time(&self, cpu_seconds: f64) -> f64 {
        cpu_seconds / self.vm.perf_factor
    }

    /// Stops the instance at `now`, charging its uptime to the ledger and
    /// returning the dollars charged. SageMaker bills launch time too.
    pub fn stop(&self, now: f64, ledger: &mut CostLedger) -> f64 {
        let uptime = (now - self.started_at).max(0.0);
        let dollars = uptime / 3600.0 * self.vm.hourly;
        ledger.charge(CostItem::VmTime, dollars, self.vm.name);
        dollars
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uptime_billing() {
        let mut l = CostLedger::new();
        let vm = VmInstance::start(VmType::ml_t2_medium(), 100.0);
        let cost = vm.stop(100.0 + 3600.0, &mut l);
        assert!((cost - 0.0582).abs() < 1e-12);
        assert!((l.total_of(CostItem::VmTime) - 0.0582).abs() < 1e-12);
    }

    #[test]
    fn hosting_instance_launch_dominates() {
        // The Table 4 effect: m4.xlarge needs minutes before first byte.
        let vm = VmInstance::start(VmType::ml_m4_xlarge(), 0.0);
        assert!(vm.ready_at() > 300.0);
    }

    #[test]
    fn perf_factor_scales_cpu_time() {
        let vm = VmInstance::start(VmType::ml_t2_medium(), 0.0);
        assert!((vm.cpu_time(7.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn prices_match_sheet() {
        let sheet = crate::pricing::PriceSheet::aws_2020();
        assert_eq!(
            VmType::ml_t2_medium().hourly,
            sheet.sagemaker_t2_medium_hour
        );
        assert_eq!(
            VmType::ml_m4_xlarge().hourly,
            sheet.sagemaker_m4_xlarge_hour
        );
    }
}
