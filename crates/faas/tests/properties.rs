//! Property-based tests for the platform simulator: pricing identities,
//! performance-law monotonicity, warm-start and storage semantics.

use ampsinf_faas::platform::{FunctionSpec, InvocationWork, Platform};
use ampsinf_faas::{CostItem, CostLedger, LambdaPerf, PerfModel, PriceSheet, Quotas, StoreKind, MB};
use proptest::prelude::*;

fn spec(mem: u32, weights_mb: u64) -> FunctionSpec {
    FunctionSpec {
        name: format!("f{mem}-{weights_mb}"),
        memory_mb: mem,
        code_bytes: MB,
        layer_bytes: vec![169 * MB, weights_mb * MB],
    }
}

fn work(weights_mb: u64, gflops: u64) -> InvocationWork {
    InvocationWork {
        load_bytes: weights_mb * MB,
        flops: gflops * 1_000_000_000,
        resident_bytes: (2 * weights_mb + 30) * MB,
        tmp_bytes: weights_mb * MB,
        ..Default::default()
    }
}

proptest! {
    #[test]
    fn billed_duration_rounds_up_and_is_monotone(a in 0.0f64..100.0, b in 0.0f64..100.0) {
        let sheet = PriceSheet::aws_2020();
        let ba = sheet.billed_duration(a);
        prop_assert!(ba >= a - 1e-12);
        prop_assert!(ba - a < sheet.billing_granularity_s + 1e-12);
        if a <= b {
            prop_assert!(ba <= sheet.billed_duration(b) + 1e-12);
        }
    }

    #[test]
    fn compute_cost_linear_in_memory(t in 0.1f64..60.0, steps in 1u32..20) {
        // At fixed duration, cost scales exactly with the GB count.
        let sheet = PriceSheet::aws_2020();
        let m1 = 512u32;
        let m2 = 512 + steps * 64;
        let c1 = sheet.lambda_compute_cost(t, m1);
        let c2 = sheet.lambda_compute_cost(t, m2);
        prop_assert!((c2 / c1 - f64::from(m2) / f64::from(m1)).abs() < 1e-9);
    }

    #[test]
    fn cpu_share_monotone_and_saturating(m1 in 128u32..3008, m2 in 128u32..3008) {
        let perf = PerfModel::default();
        let s1 = LambdaPerf::new(&perf, m1).cpu_share();
        let s2 = LambdaPerf::new(&perf, m2).cpu_share();
        prop_assert!(s1 > 0.0 && s1 <= 1.0);
        if m1 <= m2 {
            prop_assert!(s1 <= s2 + 1e-12);
        }
    }

    #[test]
    fn invocation_duration_monotone_in_memory(weights in 1u64..40, gf in 1u64..8) {
        let mut p = Platform::aws_2020();
        let (f_small, _) = p.deploy(spec(512, weights)).unwrap();
        let (f_big, _) = p.deploy(spec(2048, weights)).unwrap();
        let w = work(weights, gf);
        let small = p.invoke(f_small, 0.0, &w).unwrap();
        let big = p.invoke(f_big, 0.0, &w).unwrap();
        prop_assert!(big.duration() <= small.duration() + 1e-9);
    }

    #[test]
    fn warm_never_slower_than_cold(weights in 1u64..40, gf in 1u64..8) {
        let mut p = Platform::aws_2020();
        let (fid, _) = p.deploy(spec(1024, weights)).unwrap();
        let w = work(weights, gf);
        let cold = p.invoke(fid, 0.0, &w).unwrap();
        let warm = p.invoke(fid, cold.end + 1.0, &w).unwrap();
        prop_assert!(warm.warm);
        prop_assert!(warm.duration() <= cold.duration());
        prop_assert!(warm.dollars <= cold.dollars + 1e-12);
    }

    #[test]
    fn ledger_total_equals_sum_of_outcomes_plus_storage(
        weights in 1u64..30,
        gf in 1u64..5,
        n_chain in 2usize..5,
    ) {
        // Conservation: every dollar in the ledger is attributable.
        let mut p = Platform::aws_2020();
        let mut fids = Vec::new();
        for i in 0..n_chain {
            let (fid, _) = p.deploy(spec(1024, weights + i as u64)).unwrap();
            fids.push(fid);
        }
        let mut now = 0.0;
        let mut direct = 0.0;
        for (i, fid) in fids.iter().enumerate() {
            let mut w = work(weights + i as u64, gf);
            if i > 0 {
                w.reads.push(format!("x/{}", i - 1));
            }
            if i + 1 < fids.len() {
                w.writes.push((format!("x/{i}"), 2 * MB));
            }
            let out = p.invoke(*fid, now, &w).unwrap();
            now = out.end;
            direct += out.dollars;
        }
        let settled = p.settle_storage(now);
        prop_assert!((p.total_cost() - (direct + settled)).abs() < 1e-12);
    }

    #[test]
    fn storage_round_trip_preserves_bytes(bytes in 1u64..200_000_000) {
        let mut store = ampsinf_faas::ObjectStore::new(StoreKind::s3());
        let sheet = PriceSheet::aws_2020();
        let mut ledger = CostLedger::new();
        store.put("k", bytes, 0.0, &sheet, &mut ledger).unwrap();
        prop_assert_eq!(store.size_of("k"), Some(bytes));
        prop_assert_eq!(store.live_bytes(), bytes);
        let get = store.get("k", &sheet, &mut ledger).unwrap();
        // Transfer time symmetric for put/get on the same backend.
        let put_t = store.transfer_time(bytes, 1);
        prop_assert!((get.duration_s - put_t).abs() < 1e-12);
    }

    #[test]
    fn settle_is_idempotent(bytes in 1u64..100_000_000, until in 1.0f64..1000.0) {
        let mut store = ampsinf_faas::ObjectStore::new(StoreKind::s3());
        let sheet = PriceSheet::aws_2020();
        let mut ledger = CostLedger::new();
        store.put("k", bytes, 0.0, &sheet, &mut ledger).unwrap();
        let first = store.settle_storage(until, &sheet, &mut ledger);
        let second = store.settle_storage(until + 100.0, &sheet, &mut ledger);
        prop_assert!(first >= 0.0);
        prop_assert_eq!(second, 0.0);
    }

    #[test]
    fn round_up_memory_is_tight(mb in 1u32..3200) {
        let q = Quotas::lambda_2020();
        match q.round_up_memory(mb) {
            Some(block) => {
                prop_assert!(q.is_valid_memory(block));
                prop_assert!(block >= mb.max(q.memory_min_mb));
                // Tight: one step below is either invalid or < mb.
                if block > q.memory_min_mb {
                    let below = block - q.memory_step_mb;
                    prop_assert!(below < mb || below < q.memory_min_mb);
                }
            }
            None => prop_assert!(mb > q.memory_max_mb),
        }
    }

    #[test]
    fn deployment_validation_is_exact(weights_mb in 1u64..120) {
        let p = Platform::aws_2020();
        let s = spec(1024, weights_mb);
        let total = s.package_bytes();
        let ok = p.validate_spec(&s).is_ok();
        prop_assert_eq!(ok, total <= 250 * MB);
    }
}

#[test]
fn cost_items_partition_ledger() {
    let mut p = Platform::aws_2020();
    let (fid, _) = p.deploy(spec(1024, 10)).unwrap();
    let mut w = work(10, 2);
    w.writes.push(("o".into(), MB));
    let out = p.invoke(fid, 0.0, &w).unwrap();
    let _ = out;
    p.settle_storage(100.0);
    let sum_by_kind: f64 = [
        CostItem::LambdaCompute,
        CostItem::LambdaRequest,
        CostItem::StoragePut,
        CostItem::StorageGet,
        CostItem::StorageAtRest,
        CostItem::VmTime,
        CostItem::DataTransfer,
    ]
    .iter()
    .map(|k| p.ledger.total_of(*k))
    .sum();
    assert!((sum_by_kind - p.total_cost()).abs() < 1e-15);
}
