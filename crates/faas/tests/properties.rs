//! Property-style tests for the platform simulator: pricing identities,
//! performance-law monotonicity, warm-start and storage semantics. Inputs
//! are drawn from a deterministic PRNG / exhaustive grids instead of an
//! external property-testing framework.

use ampsinf_faas::platform::{FunctionSpec, InvocationWork, Platform};
use ampsinf_faas::{
    CostItem, CostLedger, LambdaPerf, PerfModel, PriceSheet, Quotas, SmallRng, StoreKind,
    WarmPoolPolicy, MB,
};

fn spec(mem: u32, weights_mb: u64) -> FunctionSpec {
    FunctionSpec {
        name: format!("f{mem}-{weights_mb}"),
        memory_mb: mem,
        code_bytes: MB,
        layer_bytes: vec![169 * MB, weights_mb * MB],
    }
}

fn work(weights_mb: u64, gflops: u64) -> InvocationWork {
    InvocationWork {
        load_bytes: weights_mb * MB,
        flops: gflops * 1_000_000_000,
        resident_bytes: (2 * weights_mb + 30) * MB,
        tmp_bytes: weights_mb * MB,
        ..Default::default()
    }
}

fn uniform(rng: &mut SmallRng, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

#[test]
fn billed_duration_rounds_up_and_is_monotone() {
    let sheet = PriceSheet::aws_2020();
    let mut rng = SmallRng::seed_from_u64(1);
    for _ in 0..64 {
        let a = uniform(&mut rng, 0.0, 100.0);
        let b = uniform(&mut rng, 0.0, 100.0);
        let ba = sheet.billed_duration(a);
        assert!(ba >= a - 1e-12);
        assert!(ba - a < sheet.billing_granularity_s + 1e-12);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(sheet.billed_duration(lo) <= sheet.billed_duration(hi) + 1e-12);
    }
}

#[test]
fn compute_cost_linear_in_memory() {
    // At fixed duration, cost scales exactly with the GB count.
    let sheet = PriceSheet::aws_2020();
    let mut rng = SmallRng::seed_from_u64(2);
    for _ in 0..32 {
        let t = uniform(&mut rng, 0.1, 60.0);
        let steps = rng.range_inclusive(1, 19) as u32;
        let m1 = 512u32;
        let m2 = 512 + steps * 64;
        let c1 = sheet.lambda_compute_cost(t, m1);
        let c2 = sheet.lambda_compute_cost(t, m2);
        assert!((c2 / c1 - f64::from(m2) / f64::from(m1)).abs() < 1e-9);
    }
}

#[test]
fn cpu_share_monotone_and_saturating() {
    let perf = PerfModel::default();
    let mut prev = 0.0f64;
    for m in (128u32..=3008).step_by(64) {
        let s = LambdaPerf::new(&perf, m).cpu_share();
        assert!(s > 0.0 && s <= 1.0);
        assert!(s >= prev - 1e-12, "share regressed at {m} MB");
        prev = s;
    }
}

#[test]
fn invocation_duration_monotone_in_memory() {
    let mut rng = SmallRng::seed_from_u64(3);
    for _ in 0..16 {
        let weights = rng.range_inclusive(1, 39) as u64;
        let gf = rng.range_inclusive(1, 7) as u64;
        let mut p = Platform::aws_2020();
        let (f_small, _) = p.deploy(spec(512, weights)).unwrap();
        let (f_big, _) = p.deploy(spec(2048, weights)).unwrap();
        let w = work(weights, gf);
        let small = p.invoke(f_small, 0.0, &w).unwrap();
        let big = p.invoke(f_big, 0.0, &w).unwrap();
        assert!(big.duration() <= small.duration() + 1e-9);
    }
}

#[test]
fn warm_never_slower_than_cold() {
    let mut rng = SmallRng::seed_from_u64(4);
    for _ in 0..16 {
        let weights = rng.range_inclusive(1, 39) as u64;
        let gf = rng.range_inclusive(1, 7) as u64;
        let mut p = Platform::aws_2020();
        let (fid, _) = p.deploy(spec(1024, weights)).unwrap();
        let w = work(weights, gf);
        let cold = p.invoke(fid, 0.0, &w).unwrap();
        let warm = p.invoke(fid, cold.end + 1.0, &w).unwrap();
        assert!(warm.warm);
        assert!(warm.duration() <= cold.duration());
        assert!(warm.dollars <= cold.dollars + 1e-12);
    }
}

#[test]
fn ledger_total_equals_sum_of_outcomes_plus_storage() {
    // Conservation: every dollar in the ledger is attributable.
    let mut rng = SmallRng::seed_from_u64(5);
    for _ in 0..16 {
        let weights = rng.range_inclusive(1, 29) as u64;
        let gf = rng.range_inclusive(1, 4) as u64;
        let n_chain = rng.range_inclusive(2, 4);
        let mut p = Platform::aws_2020();
        let mut fids = Vec::new();
        for i in 0..n_chain {
            let (fid, _) = p.deploy(spec(1024, weights + i as u64)).unwrap();
            fids.push(fid);
        }
        let mut now = 0.0;
        let mut direct = 0.0;
        for (i, fid) in fids.iter().enumerate() {
            let mut w = work(weights + i as u64, gf);
            if i > 0 {
                let key = p.store.intern(&format!("x/{}", i - 1));
                w.reads.push(key);
            }
            if i + 1 < fids.len() {
                let key = p.store.intern(&format!("x/{i}"));
                w.writes.push((key, 2 * MB));
            }
            let out = p.invoke(*fid, now, &w).unwrap();
            now = out.end;
            direct += out.dollars;
        }
        let settled = p.settle_storage(now);
        assert!((p.total_cost() - (direct + settled)).abs() < 1e-12);
    }
}

#[test]
fn storage_round_trip_preserves_bytes() {
    let mut rng = SmallRng::seed_from_u64(6);
    for _ in 0..32 {
        let bytes = 1 + rng.below(200_000_000) as u64;
        let mut store = ampsinf_faas::ObjectStore::new(StoreKind::s3());
        let sheet = PriceSheet::aws_2020();
        let mut ledger = CostLedger::new();
        store.put("k", bytes, 0.0, &sheet, &mut ledger).unwrap();
        assert_eq!(store.size_of("k"), Some(bytes));
        assert_eq!(store.live_bytes(), bytes);
        let get = store.get("k", &sheet, &mut ledger).unwrap();
        // Transfer time symmetric for put/get on the same backend.
        let put_t = store.transfer_time(bytes, 1);
        assert!((get.duration_s - put_t).abs() < 1e-12);
    }
}

#[test]
fn settle_is_idempotent() {
    // Settling twice at the same instant never double-bills; a later
    // settle bills exactly the incremental interval, and the object stays
    // live (settlement advances a watermark, it does not drain the store).
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..32 {
        let bytes = 1 + rng.below(100_000_000) as u64;
        let until = uniform(&mut rng, 1.0, 1000.0);
        let mut store = ampsinf_faas::ObjectStore::new(StoreKind::s3());
        let sheet = PriceSheet::aws_2020();
        let mut ledger = CostLedger::new();
        let op = store.put("k", bytes, 0.0, &sheet, &mut ledger).unwrap();
        let visible = op.duration_s;
        let first = store.settle_storage(until, &sheet, &mut ledger);
        let again = store.settle_storage(until, &sheet, &mut ledger);
        let later = store.settle_storage(until + 100.0, &sheet, &mut ledger);
        assert!(first >= 0.0);
        assert_eq!(again, 0.0);
        let from = visible.max(until);
        let expect = sheet.s3_storage_cost(bytes, (until + 100.0 - from).max(0.0));
        assert!((later - expect).abs() < 1e-12, "{later} vs {expect}");
        assert_eq!(store.size_of("k"), Some(bytes));
    }
}

#[test]
fn round_up_memory_is_tight() {
    let q = Quotas::lambda_2020();
    for mb in 1u32..3200 {
        match q.round_up_memory(mb) {
            Some(block) => {
                assert!(q.is_valid_memory(block));
                assert!(block >= mb.max(q.memory_min_mb));
                // Tight: one step below is either invalid or < mb.
                if block > q.memory_min_mb {
                    let below = block - q.memory_step_mb;
                    assert!(below < mb || below < q.memory_min_mb);
                }
            }
            None => assert!(mb > q.memory_max_mb),
        }
    }
}

#[test]
fn deployment_validation_is_exact() {
    let p = Platform::aws_2020();
    for weights_mb in 1u64..120 {
        let s = spec(1024, weights_mb);
        let total = s.package_bytes();
        let ok = p.validate_spec(&s).is_ok();
        assert_eq!(ok, total <= 250 * MB);
    }
}

/// Warm-pool settlement must be safe to call at any cadence: the
/// per-function watermark only moves forward, an instance whose whole
/// warm window (`busy_until + keep_alive`) falls at or before the
/// watermark accrues zero new idle, and no schedule of settlements
/// produces negative idle or dollars. Checked across scale-to-zero,
/// finite keep-alive, provisioned, and the Lambda default.
#[test]
fn warm_pool_repeated_settlement_matches_single_settlement() {
    let policies = [
        WarmPoolPolicy::scale_to_zero(),
        WarmPoolPolicy::keep_alive(20.0),
        WarmPoolPolicy::provisioned(2),
        WarmPoolPolicy::lambda_default(),
    ];
    let mut rng = SmallRng::seed_from_u64(9);
    for policy in policies {
        for round in 0..8 {
            // Two platforms replay the identical invoke schedule; `a`
            // settles at random instants between invocations, `b` only
            // once at the horizon. Total idle and dollars must agree.
            let mut a = Platform::aws_2020().with_warm_pool(policy);
            let mut b = Platform::aws_2020().with_warm_pool(policy);
            let (fa, _) = a.deploy(spec(1024, 10)).unwrap();
            let (fb, _) = b.deploy(spec(1024, 10)).unwrap();
            a.pre_warm(policy.pre_warm);
            b.pre_warm(policy.pre_warm);
            let w = work(10, 1);
            let (mut idle_a, mut dollars_a) = (0.0f64, 0.0f64);
            let mut watermark = 0.0f64;
            let mut start = uniform(&mut rng, 0.5, 5.0);
            for _ in 0..rng.range_inclusive(3, 8) {
                let oa = a.invoke(fa, start, &w).unwrap();
                let ob = b.invoke(fb, start, &w).unwrap();
                assert_eq!(oa.end.to_bits(), ob.end.to_bits(), "schedules diverged");
                // Settlement may land anywhere up to the next arrival —
                // never beyond it, because settling is a statement that
                // the clock has reached `until`.
                let gap = uniform(&mut rng, 0.5, 40.0);
                if rng.next_f64() < 0.6 {
                    let until = oa.end + uniform(&mut rng, 0.0, gap);
                    let (i, d) = a.settle_warm_pool(until);
                    assert!(i >= 0.0, "negative idle {i} ({policy}, round {round})");
                    assert!(d >= 0.0, "negative dollars {d} ({policy}, round {round})");
                    idle_a += i;
                    dollars_a += d;
                    watermark = watermark.max(until);
                    // Re-settling at or before the watermark adds nothing.
                    let (z, zd) = a.settle_warm_pool(uniform(&mut rng, 0.0, watermark));
                    assert_eq!(z, 0.0, "watermark not monotone ({policy})");
                    assert_eq!(zd, 0.0);
                }
                start = oa.end + gap;
            }
            let horizon = start + 50.0;
            let (ia, da) = a.settle_warm_pool(horizon);
            idle_a += ia;
            dollars_a += da;
            let (ib, db) = b.settle_warm_pool(horizon);
            assert!(
                (idle_a - ib).abs() < 1e-9,
                "interleaved {idle_a} vs single {ib} idle ({policy}, round {round})"
            );
            assert!(
                (dollars_a - db).abs() < 1e-9,
                "interleaved {dollars_a} vs single {db} dollars ({policy}, round {round})"
            );
        }
    }
}

/// The exact scenario of the watermark bug class: once an instance's
/// entire warm window has been settled, later settlements — at the same
/// instant, later, or earlier — must accrue zero new idle for it.
#[test]
fn warm_pool_lapsed_window_accrues_zero_new_idle() {
    let mut p = Platform::aws_2020().with_warm_pool(WarmPoolPolicy::keep_alive(15.0));
    let (f, _) = p.deploy(spec(1024, 10)).unwrap();
    let out = p.invoke(f, 0.0, &work(10, 1)).unwrap();
    // Settle far past the lapse: exactly one keep-alive window of idle.
    let (first, first_d) = p.settle_warm_pool(out.end + 100.0);
    assert!((first - 15.0).abs() < 1e-9, "one full window, got {first}");
    assert_eq!(first_d, 0.0, "keep-alive idle is free");
    // The warm window [end, end+15] now lies entirely at or before the
    // watermark: no repetition may re-bill any part of it.
    assert_eq!(p.settle_warm_pool(out.end + 100.0), (0.0, 0.0));
    assert_eq!(p.settle_warm_pool(out.end + 500.0), (0.0, 0.0));
    assert_eq!(p.settle_warm_pool(out.end), (0.0, 0.0), "backwards settle");
}

/// Per-policy idle tails: scale-to-zero never idles, keep-alive caps the
/// tail at its horizon, provisioned accrues exactly the incremental
/// interval per instance — and bills it.
#[test]
fn warm_pool_policy_tails_are_exact() {
    let w = work(10, 1);

    let mut zero = Platform::aws_2020().with_warm_pool(WarmPoolPolicy::scale_to_zero());
    let (f, _) = zero.deploy(spec(1024, 10)).unwrap();
    let out = zero.invoke(f, 0.0, &w).unwrap();
    assert_eq!(zero.settle_warm_pool(out.end + 1000.0), (0.0, 0.0));

    let mut prov = Platform::aws_2020().with_warm_pool(WarmPoolPolicy::provisioned(2));
    let (f, _) = prov.deploy(spec(1024, 10)).unwrap();
    prov.pre_warm(2);
    let out = prov.invoke(f, 0.0, &w).unwrap();
    let (i1, d1) = prov.settle_warm_pool(out.end);
    // Both instances idled from t = 0; the reused one stopped idling at
    // the warm start, the spare idled the whole span.
    assert!(i1 > 0.0 && d1 > 0.0, "provisioned idle must be billed");
    let (i2, d2) = prov.settle_warm_pool(out.end + 10.0);
    assert!(
        (i2 - 20.0).abs() < 1e-9,
        "2 instances x 10s increment, got {i2}"
    );
    assert!(d2 > 0.0);
}

#[test]
fn cost_items_partition_ledger() {
    let mut p = Platform::aws_2020();
    let (fid, _) = p.deploy(spec(1024, 10)).unwrap();
    let mut w = work(10, 2);
    let key = p.store.intern("o");
    w.writes.push((key, MB));
    let out = p.invoke(fid, 0.0, &w).unwrap();
    let _ = out;
    p.settle_storage(100.0);
    let sum_by_kind: f64 = [
        CostItem::LambdaCompute,
        CostItem::LambdaRequest,
        CostItem::StoragePut,
        CostItem::StorageGet,
        CostItem::StorageAtRest,
        CostItem::VmTime,
        CostItem::DataTransfer,
    ]
    .iter()
    .map(|k| p.ledger.total_of(*k))
    .sum();
    assert!((sum_by_kind - p.total_cost()).abs() < 1e-15);
}
