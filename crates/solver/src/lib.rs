//! From-scratch optimization stack for AMPS-Inf.
//!
//! The paper (§3) reduces cost-minimal model partitioning + resource
//! provisioning to a Mixed-Integer Quadratic Program and notes that "any
//! MIQP solver such as Gurobi, CPLEX, etc." can be used; the authors used
//! CVXPY. None of those are available here, so this crate implements the
//! whole chain from scratch, sized for AMPS-Inf's problem scale (tens to a
//! few hundred variables):
//!
//! * [`lp`] — dense two-phase primal simplex (feasibility/phase-1 engine and
//!   linear-objective fallback);
//! * [`qp`] — primal active-set solver for convex quadratic programs with
//!   equality rows, inequality rows and box bounds (Nocedal & Wright,
//!   Alg. 16.3);
//! * [`qcr`] — the paper's Quadratic Convex Reformulation step (Eq. 22–23,
//!   after Billionnet–Elloumi–Plateau): a diagonal perturbation
//!   `Σ μ_j (x_j² − x_j)` that vanishes on binaries but convexifies the
//!   continuous relaxation. The SDP that yields the optimal `μ*` is
//!   approximated by an eigenvalue shift plus coordinate refinement (see
//!   module docs and DESIGN.md §1);
//! * [`bb`] — best-first branch-and-bound over the convexified relaxations,
//!   exact for the problem sizes AMPS-Inf produces;
//! * [`problem`] — the `MiqpProblem` builder shared by all of the above.
//!
//! # Example: a pick-one memory choice as a tiny MIQP
//!
//! ```
//! use ampsinf_linalg::Matrix;
//! use ampsinf_solver::bb::{solve_miqp, BbStatus};
//! use ampsinf_solver::{BbOptions, MiqpProblem, VarKind};
//!
//! // Three mutually exclusive options with quadratic + linear cost.
//! let h = Matrix::from_diag(&[2.0, 6.0, 4.0]);
//! let mut p = MiqpProblem::new(h, vec![0.5, 0.1, 0.2], vec![VarKind::Binary; 3]);
//! p.add_pick_one(&[0, 1, 2]);
//!
//! let sol = solve_miqp(&p, BbOptions::default());
//! assert_eq!(sol.status, BbStatus::Optimal);
//! // Option 0 wins: ½·2 + 0.5 = 1.5 vs 3.1 and 2.2.
//! assert_eq!(sol.x[0], 1.0);
//! assert!((sol.objective - 1.5).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
// Indexed loops are the clearest idiom for the dense numerical kernels
// here (simultaneous row/column index arithmetic); the iterator forms
// clippy suggests obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod bb;
pub mod lp;
pub mod problem;
pub mod qcr;
pub mod qp;

pub use bb::{BbOptions, BbSolution, BbStats, BranchAndBound};
pub use lp::{LpProblem, LpSolution, LpStatus, Relation};
pub use problem::{MiqpProblem, VarKind};
pub use qcr::{convexify, Convexified, ConvexifyMethod};
pub use qp::{QpProblem, QpSolution, QpStatus, QpWorkspace};

/// Solver-wide numerical tolerance for feasibility checks.
pub const FEAS_TOL: f64 = 1e-7;
/// Solver-wide tolerance for integrality checks.
pub const INT_TOL: f64 = 1e-6;
