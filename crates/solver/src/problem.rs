//! Mixed-integer quadratic problem container and builder.

use crate::qp::QpProblem;
use ampsinf_linalg::Matrix;

/// Kind of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Real-valued variable.
    Continuous,
    /// Integer-valued variable.
    Integer,
    /// 0/1 variable. In AMPS-Inf these encode the memory-block choice
    /// `x_{j,i}` of the paper's Eq. (1).
    Binary,
}

/// A Mixed-Integer Quadratic Program:
/// `min ½xᵀHx + cᵀx + k` over a polyhedron with box bounds, where some
/// variables are integer or binary.
#[derive(Debug, Clone)]
pub struct MiqpProblem {
    /// The continuous relaxation data (Hessian, linear part, rows, bounds).
    pub qp: QpProblem,
    /// Per-variable kind; binaries get implicit `[0,1]` bounds at build time.
    pub kinds: Vec<VarKind>,
}

impl MiqpProblem {
    /// Creates an MIQP skeleton from Hessian, linear part and kinds.
    ///
    /// Binary variables automatically receive `[0, 1]` bounds.
    ///
    /// # Panics
    /// Panics if dimensions disagree.
    pub fn new(h: Matrix, c: Vec<f64>, kinds: Vec<VarKind>) -> Self {
        assert_eq!(c.len(), kinds.len(), "MiqpProblem: c/kinds length mismatch");
        let mut qp = QpProblem::new(h, c);
        for (i, k) in kinds.iter().enumerate() {
            if *k == VarKind::Binary {
                qp.lb[i] = 0.0;
                qp.ub[i] = 1.0;
            }
        }
        MiqpProblem { qp, kinds }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.kinds.len()
    }

    /// Indices of integer-or-binary variables.
    pub fn integral_indices(&self) -> Vec<usize> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| **k != VarKind::Continuous)
            .map(|(i, _)| i)
            .collect()
    }

    /// Adds an SOS-1-style "pick exactly one" equality `Σ_{i∈group} x_i = 1`
    /// (the paper's Eq. (1) for each lambda's memory choice).
    pub fn add_pick_one(&mut self, group: &[usize]) {
        let mut row = vec![0.0; self.num_vars()];
        for &i in group {
            row[i] = 1.0;
        }
        self.qp.eq.push((row, 1.0));
    }

    /// Adds a general equality row `aᵀx = b`.
    pub fn add_eq(&mut self, a: Vec<f64>, b: f64) {
        assert_eq!(a.len(), self.num_vars(), "add_eq: row length mismatch");
        self.qp.eq.push((a, b));
    }

    /// Adds a general inequality row `aᵀx ≤ b`.
    pub fn add_le(&mut self, a: Vec<f64>, b: f64) {
        assert_eq!(a.len(), self.num_vars(), "add_le: row length mismatch");
        self.qp.ineq.push((a, b));
    }

    /// Sets bounds for variable `i`.
    pub fn set_bounds(&mut self, i: usize, lb: f64, ub: f64) {
        assert!(lb <= ub, "set_bounds: lb > ub for var {i}");
        self.qp.lb[i] = lb;
        self.qp.ub[i] = ub;
    }

    /// Objective at a point (original, un-convexified coefficients).
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        self.qp.objective_at(x)
    }

    /// True if `x` is integral on all integer/binary variables (to `tol`).
    pub fn is_integral(&self, x: &[f64], tol: f64) -> bool {
        self.kinds
            .iter()
            .zip(x)
            .all(|(k, v)| *k == VarKind::Continuous || (v - v.round()).abs() <= tol)
    }

    /// True if the quadratic coupling is confined to binary×binary entries
    /// (the structure the QCR convexification step requires; AMPS-Inf's
    /// per-cut programs have this shape — Eq. (12)–(14) are quadratic in the
    /// binary memory selectors only).
    pub fn quadratic_only_on_binaries(&self) -> bool {
        let n = self.num_vars();
        for r in 0..n {
            for c in 0..n {
                if self.qp.h[(r, c)] != 0.0
                    && (self.kinds[r] != VarKind::Binary || self.kinds[c] != VarKind::Binary)
                {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MiqpProblem {
        let h = Matrix::from_diag(&[2.0, 2.0, 0.0]);
        MiqpProblem::new(
            h,
            vec![1.0, -1.0, 0.5],
            vec![VarKind::Binary, VarKind::Binary, VarKind::Continuous],
        )
    }

    #[test]
    fn binaries_get_unit_bounds() {
        let p = sample();
        assert_eq!(p.qp.lb[0], 0.0);
        assert_eq!(p.qp.ub[0], 1.0);
        assert_eq!(p.qp.lb[2], f64::NEG_INFINITY);
    }

    #[test]
    fn integral_indices_listed() {
        let p = sample();
        assert_eq!(p.integral_indices(), vec![0, 1]);
    }

    #[test]
    fn pick_one_adds_equality() {
        let mut p = sample();
        p.add_pick_one(&[0, 1]);
        assert_eq!(p.qp.eq.len(), 1);
        assert_eq!(p.qp.eq[0].0, vec![1.0, 1.0, 0.0]);
        assert_eq!(p.qp.eq[0].1, 1.0);
    }

    #[test]
    fn is_integral_checks_only_integral_vars() {
        let p = sample();
        assert!(p.is_integral(&[1.0, 0.0, 0.37], 1e-6));
        assert!(!p.is_integral(&[0.5, 0.0, 0.37], 1e-6));
    }

    #[test]
    fn quadratic_structure_check() {
        // Zero diagonal entry on the continuous variable → binary-only coupling.
        let h = Matrix::from_diag(&[2.0, 2.0, 0.0]);
        let q = MiqpProblem::new(
            h,
            vec![0.0; 3],
            vec![VarKind::Binary, VarKind::Binary, VarKind::Continuous],
        );
        assert!(q.quadratic_only_on_binaries());
        let h_bad = Matrix::from_diag(&[2.0, 2.0, 1.0]);
        let bad = MiqpProblem::new(
            h_bad,
            vec![0.0; 3],
            vec![VarKind::Binary, VarKind::Binary, VarKind::Continuous],
        );
        assert!(!bad.quadratic_only_on_binaries());
    }

    #[test]
    fn set_bounds_applies() {
        let mut p = sample();
        p.set_bounds(2, -1.0, 4.0);
        assert_eq!(p.qp.lb[2], -1.0);
        assert_eq!(p.qp.ub[2], 4.0);
    }
}
