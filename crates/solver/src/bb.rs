//! Best-first branch-and-bound for convexified MIQPs.
//!
//! This is the "any MIQP solver such as Gurobi, CPLEX" role from the paper
//! (§3, §4): exact minimization of the convexified quadratic over the
//! integrality lattice. Nodes carry bound overrides; each node's lower bound
//! comes from the convex QP relaxation ([`crate::qp`]), and incumbents are
//! found by rounding relaxation points and by integral relaxation optima.

use crate::problem::{MiqpProblem, VarKind};
use crate::qcr::{convexify, ConvexifyMethod};
use crate::qp::{QpProblem, QpStatus, QpWorkspace};
use crate::{FEAS_TOL, INT_TOL};
use ampsinf_linalg::vector;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Options controlling a branch-and-bound run.
#[derive(Debug, Clone)]
pub struct BbOptions {
    /// Node budget; exceeded → `BbStatus::NodeLimit` with the incumbent.
    pub max_nodes: usize,
    /// Relative optimality gap at which the search stops early.
    pub rel_gap: f64,
    /// Convexification policy applied before the search.
    pub convexify: ConvexifyMethod,
    /// Warm-start each child node's relaxation from its parent's optimum
    /// (repaired onto the child bounds), skipping the phase-1 simplex.
    pub warm_start: bool,
    /// Externally injected incumbent upper bound: nodes whose relaxation
    /// bound proves they cannot beat it are pruned without expansion. The
    /// search then guarantees only that any returned objective strictly
    /// below the cutoff is the true optimum *value*; when the bound ever
    /// fires (`BbStats::cutoff_prunes > 0`) the run is no longer
    /// bit-identical to an uninjected run, so callers that need replay
    /// determinism must treat such results as advisory. `None` disables
    /// injection entirely (the default — zero behaviour change).
    pub cutoff: Option<f64>,
}

impl Default for BbOptions {
    fn default() -> Self {
        BbOptions {
            max_nodes: 200_000,
            rel_gap: 1e-9,
            convexify: ConvexifyMethod::DualRefine,
            warm_start: true,
            cutoff: None,
        }
    }
}

/// Termination status of a branch-and-bound run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BbStatus {
    /// Proven optimal (within `rel_gap`).
    Optimal,
    /// No integer-feasible point exists.
    Infeasible,
    /// Node limit hit; `x`/`objective` hold the best incumbent if any.
    NodeLimit,
    /// The problem could not be convexified (quadratic coupling outside the
    /// binary block) — restructure the formulation.
    CannotConvexify,
}

/// Search statistics.
#[derive(Debug, Clone, Default)]
pub struct BbStats {
    /// Nodes popped from the frontier.
    pub nodes: usize,
    /// QP relaxations solved.
    pub relaxations: usize,
    /// Incumbent improvements observed.
    pub incumbent_updates: usize,
    /// Node relaxations warm-started from the parent solution (phase-1
    /// simplex skipped).
    pub warm_starts: usize,
    /// Nodes pruned by the externally injected [`BbOptions::cutoff`] bound.
    /// Zero ⇒ the cutoff never influenced the search and the run is
    /// bit-identical to one without it.
    pub cutoff_prunes: usize,
    /// Best proven lower bound at termination.
    pub best_bound: f64,
}

/// Result of a branch-and-bound run.
#[derive(Debug, Clone)]
pub struct BbSolution {
    /// Termination status.
    pub status: BbStatus,
    /// Best integer-feasible point found (empty when none).
    pub x: Vec<f64>,
    /// Objective of `x` under the *original* (pre-QCR) coefficients.
    pub objective: f64,
    /// Search statistics.
    pub stats: BbStats,
}

/// A frontier node: bound overrides + parent relaxation bound, plus the
/// parent's relaxation optimum as a warm-start hint.
#[derive(Debug, Clone)]
struct Node {
    lb: Vec<f64>,
    ub: Vec<f64>,
    bound: f64,
    depth: usize,
    parent_x: Option<Vec<f64>>,
}

/// Min-heap ordering on node bound (best-first).
struct HeapNode(Node);

impl PartialEq for HeapNode {
    fn eq(&self, other: &Self) -> bool {
        self.0.bound == other.0.bound
    }
}
impl Eq for HeapNode {}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest bound out
        // first. Tie-break on depth (deeper first → dives toward incumbents).
        other
            .0
            .bound
            .partial_cmp(&self.0.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.0.depth.cmp(&other.0.depth))
    }
}

/// Branch-and-bound solver instance.
#[derive(Debug)]
pub struct BranchAndBound {
    /// Original problem (incumbents are scored against this objective).
    original: MiqpProblem,
    /// Convexified problem used for relaxations.
    relaxed: MiqpProblem,
    opts: BbOptions,
}

impl BranchAndBound {
    /// Prepares a solver: convexifies the problem up front.
    ///
    /// Returns `None` when the problem cannot be convexified by a binary
    /// diagonal perturbation (see [`crate::qcr::convexify`]).
    pub fn new(problem: MiqpProblem, opts: BbOptions) -> Option<Self> {
        let conv = convexify(&problem, opts.convexify)?;
        Some(BranchAndBound {
            original: problem,
            relaxed: conv.problem,
            opts,
        })
    }

    /// Runs the search to completion (or a limit).
    pub fn solve(&self) -> BbSolution {
        self.solve_with(&mut QpWorkspace::new())
    }

    /// Runs the search, reusing `ws` for every relaxation solve. Produces
    /// bit-identical results to [`solve`](BranchAndBound::solve); callers
    /// solving many MIQPs (the optimizer's pass 2) share one workspace per
    /// thread to keep relaxations allocation-free.
    pub fn solve_with(&self, ws: &mut QpWorkspace) -> BbSolution {
        let mut stats = BbStats::default();
        let mut incumbent: Option<(Vec<f64>, f64)> = None;
        // One scratch QP per run: nodes differ only in their bound vectors,
        // so overwrite lb/ub in place instead of cloning the whole problem
        // (Hessian, constraint rows) at every node.
        let mut scratch = self.relaxed.qp.clone();
        // Lagrangian dual of the single coupling row over the pick-one
        // lattice: a lower bound on the optimum the search can stop at —
        // once an incumbent is within the gap of it, no node can beat it.
        let root_dual = lagrangian_root_bound(&self.original);

        let root = Node {
            lb: self.relaxed.qp.lb.clone(),
            ub: self.relaxed.qp.ub.clone(),
            bound: f64::NEG_INFINITY,
            depth: 0,
            parent_x: None,
        };
        let mut heap = BinaryHeap::new();
        heap.push(HeapNode(root));

        while let Some(HeapNode(node)) = heap.pop() {
            if stats.nodes >= self.opts.max_nodes {
                stats.best_bound = node.bound;
                return self.finish(BbStatus::NodeLimit, incumbent, stats);
            }
            stats.nodes += 1;

            // Prune against the incumbent before paying for the relaxation.
            if let Some((_, inc_obj)) = &incumbent {
                if node.bound >= *inc_obj - self.gap_slack(*inc_obj) {
                    stats.best_bound = node.bound;
                    continue;
                }
            }
            // Prune against the injected cutoff: a node whose bound already
            // reaches it cannot yield a solution the caller would keep.
            if let Some(co) = self.opts.cutoff {
                if node.bound >= co {
                    stats.cutoff_prunes += 1;
                    stats.best_bound = node.bound;
                    continue;
                }
            }

            // Solve the node relaxation, warm-started from the parent's
            // optimum when possible.
            scratch.lb.copy_from_slice(&node.lb);
            scratch.ub.copy_from_slice(&node.ub);
            stats.relaxations += 1;
            let hint = if self.opts.warm_start {
                self.repair_hint(&node)
            } else {
                None
            };
            let (rel, warmed) = scratch.solve_with_hint(hint.as_deref(), ws);
            if warmed {
                stats.warm_starts += 1;
            }
            let bound = match rel.status {
                QpStatus::Infeasible => continue,
                QpStatus::Optimal => rel.objective - 1e-9, // ridge slack
                // An unconverged relaxation's objective is NOT a valid lower
                // bound — never prune on it (children still make progress by
                // fixing variables).
                QpStatus::IterationLimit => f64::NEG_INFINITY,
            };
            if let Some((_, inc_obj)) = &incumbent {
                if bound >= *inc_obj - self.gap_slack(*inc_obj) {
                    continue;
                }
            }
            if let Some(co) = self.opts.cutoff {
                if bound >= co {
                    stats.cutoff_prunes += 1;
                    continue;
                }
            }

            // Most fractional integral variable.
            let frac = self.most_fractional(&rel.x);
            match frac {
                None => {
                    // Integral relaxation optimum → candidate incumbent.
                    let x = self.snap(&rel.x, &node);
                    if self.original.qp.is_feasible(&x) {
                        let obj = self.original.objective_at(&x);
                        if incumbent.as_ref().is_none_or(|(_, o)| obj < *o) {
                            incumbent = Some((x, obj));
                            stats.incumbent_updates += 1;
                            if let Some(rb) = root_dual {
                                if obj <= rb + self.gap_slack(obj) {
                                    stats.best_bound = rb;
                                    return self.finish(BbStatus::Optimal, incumbent, stats);
                                }
                            }
                        }
                    }
                }
                Some((idx, val)) => {
                    // Rounding heuristic: try the nearest integer point.
                    if incumbent.is_none() {
                        let rounded = self.round_repair(&rel.x, &node, &mut scratch, ws);
                        if let Some(x) = rounded {
                            let obj = self.original.objective_at(&x);
                            incumbent = Some((x, obj));
                            stats.incumbent_updates += 1;
                        }
                    }
                    // The root dual bound may already certify the incumbent:
                    // any other feasible point costs ≥ the bound, so an
                    // incumbent within the gap of it is optimal — stop
                    // before expanding children.
                    if let (Some(rb), Some((_, obj))) = (root_dual, &incumbent) {
                        if *obj <= rb + self.gap_slack(*obj) {
                            stats.best_bound = rb;
                            return self.finish(BbStatus::Optimal, incumbent, stats);
                        }
                    }
                    // Branch: x ≤ ⌊val⌋ and x ≥ ⌈val⌉. Children inherit the
                    // parent relaxation optimum as their warm-start hint.
                    let hint = self.opts.warm_start.then(|| rel.x.clone());
                    let mut down = node.clone();
                    down.ub[idx] = val.floor();
                    down.bound = bound;
                    down.depth += 1;
                    down.parent_x = hint.clone();
                    if down.lb[idx] <= down.ub[idx] + 1e-12 {
                        heap.push(HeapNode(down));
                    }
                    let mut up = node;
                    up.lb[idx] = val.ceil();
                    up.bound = bound;
                    up.depth += 1;
                    up.parent_x = hint;
                    if up.lb[idx] <= up.ub[idx] + 1e-12 {
                        heap.push(HeapNode(up));
                    }
                }
            }
        }

        stats.best_bound = incumbent.as_ref().map_or(f64::INFINITY, |(_, o)| *o);
        let status = if incumbent.is_some() {
            BbStatus::Optimal
        } else {
            BbStatus::Infeasible
        };
        self.finish(status, incumbent, stats)
    }

    fn gap_slack(&self, inc_obj: f64) -> f64 {
        self.opts.rel_gap * inc_obj.abs().max(1.0) + 1e-9
    }

    /// `(index, fractional value)` of the integral variable farthest from
    /// an integer, or `None` when all are integral.
    fn most_fractional(&self, x: &[f64]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64, f64)> = None; // idx, val, frac dist
        for (i, k) in self.original.kinds.iter().enumerate() {
            if *k == VarKind::Continuous {
                continue;
            }
            let v = x[i];
            let dist = (v - v.round()).abs();
            if dist > INT_TOL && best.as_ref().is_none_or(|(_, _, d)| dist > *d) {
                best = Some((i, v, dist));
            }
        }
        best.map(|(i, v, _)| (i, v))
    }

    /// Snaps an (integral-to-tolerance) relaxation point exactly onto the
    /// lattice, respecting the node's bounds.
    fn snap(&self, x: &[f64], node: &Node) -> Vec<f64> {
        x.iter()
            .enumerate()
            .map(|(i, v)| {
                if self.original.kinds[i] == VarKind::Continuous {
                    *v
                } else {
                    v.round().clamp(node.lb[i], node.ub[i])
                }
            })
            .collect()
    }

    /// Repairs the parent node's relaxation optimum onto this node's bounds
    /// so the active-set solver can start from it without a phase-1 run.
    /// Clamping onto the child box can break equality rows (branching a
    /// pick-one variable to 0 removes its mass), so each row's residual is
    /// redistributed over the row's support — in index order, within bounds.
    /// Returns `None` when no repair exists; the inequality rows are left to
    /// the solver's own feasibility check (an infeasible hint cold-starts).
    fn repair_hint(&self, node: &Node) -> Option<Vec<f64>> {
        let px = node.parent_x.as_ref()?;
        let mut x: Vec<f64> = px
            .iter()
            .enumerate()
            .map(|(i, v)| v.clamp(node.lb[i], node.ub[i]))
            .collect();
        for (a, b) in &self.relaxed.qp.eq {
            let mut resid = b - vector::dot(a, &x);
            if resid.abs() <= FEAS_TOL {
                continue;
            }
            for i in 0..x.len() {
                if a[i] == 0.0 {
                    continue;
                }
                let next = (x[i] + resid / a[i]).clamp(node.lb[i], node.ub[i]);
                resid -= a[i] * (next - x[i]);
                x[i] = next;
                if resid.abs() <= FEAS_TOL {
                    break;
                }
            }
            if resid.abs() > FEAS_TOL {
                return None;
            }
        }
        Some(x)
    }

    /// Rounds integral variables and re-optimizes the continuous ones with
    /// the integral block fixed; returns a feasible point or `None`.
    /// Clobbers `scratch`'s bounds (the node loop rewrites them anyway).
    fn round_repair(
        &self,
        x: &[f64],
        node: &Node,
        scratch: &mut QpProblem,
        ws: &mut QpWorkspace,
    ) -> Option<Vec<f64>> {
        scratch.lb.copy_from_slice(&node.lb);
        scratch.ub.copy_from_slice(&node.ub);
        for (i, k) in self.original.kinds.iter().enumerate() {
            if *k != VarKind::Continuous {
                let v = x[i].round().clamp(node.lb[i], node.ub[i]);
                scratch.lb[i] = v;
                scratch.ub[i] = v;
            }
        }
        let sol = scratch.solve_with(ws);
        if sol.status == QpStatus::Optimal && self.original.qp.is_feasible(&sol.x) {
            let snapped = self.snap(&sol.x, node);
            if self.original.qp.is_feasible(&snapped) {
                return Some(snapped);
            }
        }
        None
    }

    fn finish(
        &self,
        status: BbStatus,
        incumbent: Option<(Vec<f64>, f64)>,
        stats: BbStats,
    ) -> BbSolution {
        match incumbent {
            Some((x, objective)) => BbSolution {
                status,
                x,
                objective,
                stats,
            },
            None => BbSolution {
                status: if status == BbStatus::Optimal {
                    BbStatus::Infeasible
                } else {
                    status
                },
                x: Vec::new(),
                objective: f64::INFINITY,
                stats,
            },
        }
    }
}

/// Lagrangian root bound for the AMPS-Inf per-cut MIQP shape: all-binary
/// variables partitioned into disjoint pick-one groups (`Σ_{i∈g} x_i = 1`),
/// a diagonal Hessian, and at most one coupling `≤` row (the SLO).
///
/// Dualizing the single coupling row `tᵀx ≤ b` with multiplier `λ ≥ 0`
/// leaves a problem separable per group, whose lattice minimum is a plain
/// per-group argmin sweep:
///
/// ```text
/// L(λ) = Σ_g min_{i∈g} (cost_i + λ·t_i) − λ·b + k,   cost_i = ½H_ii + c_i
/// ```
///
/// `L` is concave piecewise-linear in `λ`, so its maximum sits at `λ = 0`
/// or at a breakpoint where some group's argmin switches between a pair
/// `(i, j)` — i.e. `λ = (cost_j − cost_i)/(t_i − t_j)`. Evaluating every
/// candidate and taking the best gives the exact dual maximum; by weak
/// duality **every** candidate already yields a valid lower bound on the
/// constrained integer optimum, so the result is safe even when the dual is
/// unbounded (infeasible primal — the bound is then merely finite).
///
/// Returns `None` when the problem does not have the required shape.
pub fn lagrangian_root_bound(p: &MiqpProblem) -> Option<f64> {
    let n = p.num_vars();
    if n == 0 || p.qp.ineq.len() > 1 {
        return None;
    }
    for i in 0..n {
        if p.kinds[i] != VarKind::Binary || p.qp.lb[i] != 0.0 || p.qp.ub[i] != 1.0 {
            return None;
        }
    }
    for r in 0..n {
        for c in 0..n {
            if r != c && p.qp.h[(r, c)] != 0.0 {
                return None;
            }
        }
    }
    // Equality rows must be disjoint pick-one groups covering every var.
    let mut owner = vec![usize::MAX; n];
    for (g, (a, b)) in p.qp.eq.iter().enumerate() {
        if *b != 1.0 {
            return None;
        }
        for (i, &coef) in a.iter().enumerate() {
            if coef == 0.0 {
                continue;
            }
            if coef != 1.0 || owner[i] != usize::MAX {
                return None;
            }
            owner[i] = g;
        }
    }
    if owner.contains(&usize::MAX) {
        return None;
    }

    let groups = p.qp.eq.len();
    let cost: Vec<f64> = (0..n).map(|i| 0.5 * p.qp.h[(i, i)] + p.qp.c[i]).collect();
    let eval = |lam: f64, t: &[f64], rhs: f64| -> f64 {
        let mut total = p.qp.constant - lam * rhs;
        for g in 0..groups {
            let mut best = f64::INFINITY;
            for i in 0..n {
                if owner[i] == g {
                    best = best.min(cost[i] + lam * t[i]);
                }
            }
            total += best;
        }
        total
    };

    match p.qp.ineq.first() {
        None => Some(eval(0.0, &vec![0.0; n], 0.0)),
        Some((t, rhs)) => {
            if t.iter().any(|&v| v < 0.0 || !v.is_finite()) {
                return None;
            }
            let mut best = eval(0.0, t, *rhs);
            for g in 0..groups {
                let idx: Vec<usize> = (0..n).filter(|&i| owner[i] == g).collect();
                for (a_pos, &i) in idx.iter().enumerate() {
                    for &j in &idx[a_pos + 1..] {
                        let dt = t[i] - t[j];
                        if dt != 0.0 {
                            let lam = (cost[j] - cost[i]) / dt;
                            if lam > 0.0 && lam.is_finite() {
                                best = best.max(eval(lam, t, *rhs));
                            }
                        }
                    }
                }
            }
            Some(best)
        }
    }
}

/// One-call convenience: convexify + branch-and-bound with options.
pub fn solve_miqp(problem: &MiqpProblem, opts: BbOptions) -> BbSolution {
    solve_miqp_with(problem, opts, &mut QpWorkspace::new())
}

/// Like [`solve_miqp`], but reuses a caller-held [`QpWorkspace`] across the
/// run — the hot path for callers dispatching many MIQPs on one thread.
pub fn solve_miqp_with(problem: &MiqpProblem, opts: BbOptions, ws: &mut QpWorkspace) -> BbSolution {
    match BranchAndBound::new(problem.clone(), opts) {
        Some(bb) => bb.solve_with(ws),
        None => BbSolution {
            status: BbStatus::CannotConvexify,
            x: Vec::new(),
            objective: f64::INFINITY,
            stats: BbStats::default(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampsinf_linalg::Matrix;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "{a} != {b}");
    }

    /// Brute-force binary enumeration oracle.
    fn brute_force(p: &MiqpProblem) -> Option<(Vec<f64>, f64)> {
        let bins = p.integral_indices();
        assert!(
            p.kinds.iter().all(|k| *k != VarKind::Integer),
            "oracle handles binaries only"
        );
        let mut best: Option<(Vec<f64>, f64)> = None;
        for mask in 0u64..(1 << bins.len()) {
            let mut x = vec![0.0; p.num_vars()];
            for (b, &i) in bins.iter().enumerate() {
                x[i] = ((mask >> b) & 1) as f64;
            }
            if p.qp.is_feasible(&x) {
                let obj = p.objective_at(&x);
                if best.as_ref().is_none_or(|(_, o)| obj < *o) {
                    best = Some((x, obj));
                }
            }
        }
        best
    }

    #[test]
    fn knapsack_like_binary_qp() {
        // min x0 + 2x1 + 3x2 − 5x0x1 over binaries with x0 + x1 + x2 ≤ 2.
        let mut h = Matrix::zeros(3, 3);
        h[(0, 1)] = -5.0;
        h[(1, 0)] = -5.0;
        let mut p = MiqpProblem::new(h, vec![1.0, 2.0, 3.0], vec![VarKind::Binary; 3]);
        p.add_le(vec![1.0, 1.0, 1.0], 2.0);
        let sol = solve_miqp(&p, BbOptions::default());
        assert_eq!(sol.status, BbStatus::Optimal);
        let (bx, bobj) = brute_force(&p).unwrap();
        assert_close(sol.objective, bobj);
        assert_eq!(sol.x, bx);
    }

    #[test]
    fn pick_one_group_selects_cheapest() {
        // Pure linear costs with SOS-1: picks the min coefficient.
        let h = Matrix::zeros(4, 4);
        let mut p = MiqpProblem::new(h, vec![3.0, 1.0, 2.0, 5.0], vec![VarKind::Binary; 4]);
        p.add_pick_one(&[0, 1, 2, 3]);
        let sol = solve_miqp(&p, BbOptions::default());
        assert_eq!(sol.status, BbStatus::Optimal);
        assert_close(sol.objective, 1.0);
        assert_close(sol.x[1], 1.0);
    }

    #[test]
    fn infeasible_binary_problem() {
        let h = Matrix::zeros(2, 2);
        let mut p = MiqpProblem::new(h, vec![1.0, 1.0], vec![VarKind::Binary; 2]);
        p.add_eq(vec![1.0, 1.0], 3.0); // sum of two binaries can't be 3
        let sol = solve_miqp(&p, BbOptions::default());
        assert_eq!(sol.status, BbStatus::Infeasible);
    }

    #[test]
    fn integer_variable_branching() {
        // min (y − 2.6)² with y integer in [0, 10] → y = 3.
        let h = Matrix::from_diag(&[2.0]);
        let mut p = MiqpProblem::new(h, vec![-5.2], vec![VarKind::Integer]);
        p.set_bounds(0, 0.0, 10.0);
        let sol = solve_miqp(&p, BbOptions::default());
        assert_eq!(sol.status, BbStatus::Optimal);
        assert_close(sol.x[0], 3.0);
    }

    #[test]
    fn mixed_binary_continuous() {
        // min (z − 0.3)² + x, binary x, continuous z ∈ [0,1], x ≥ z (as
        // z − x ≤ 0): optimum x = 0, z = 0 → 0.09.
        let h = Matrix::from_diag(&[0.0, 2.0]);
        let mut p = MiqpProblem::new(
            h,
            vec![1.0, -0.6],
            vec![VarKind::Binary, VarKind::Continuous],
        );
        p.set_bounds(1, 0.0, 1.0);
        p.qp.constant = 0.09;
        p.add_le(vec![-1.0, 1.0], 0.0);
        let sol = solve_miqp(&p, BbOptions::default());
        assert_eq!(sol.status, BbStatus::Optimal);
        assert_close(sol.objective, 0.09);
        assert_close(sol.x[0], 0.0);
    }

    #[test]
    fn nonconvex_quadratic_on_binaries_is_exact() {
        // Indefinite Q forces the QCR path; compare against brute force.
        let h = Matrix::from_rows(&[&[0.0, 4.0, -2.0], &[4.0, 0.0, 6.0], &[-2.0, 6.0, 0.0]]);
        let mut p = MiqpProblem::new(h, vec![-1.0, -1.0, -1.0], vec![VarKind::Binary; 3]);
        p.add_le(vec![1.0, 1.0, 1.0], 2.0);
        let sol = solve_miqp(&p, BbOptions::default());
        assert_eq!(sol.status, BbStatus::Optimal);
        let (_, bobj) = brute_force(&p).unwrap();
        assert_close(sol.objective, bobj);
    }

    #[test]
    fn cannot_convexify_reported() {
        // Concave curvature on an Integer variable: the binary μ-trick does
        // not apply and the solver must refuse rather than mis-solve.
        let h = Matrix::from_diag(&[-2.0]);
        let mut p = MiqpProblem::new(h, vec![0.0], vec![VarKind::Integer]);
        p.set_bounds(0, 0.0, 10.0);
        let sol = solve_miqp(&p, BbOptions::default());
        assert_eq!(sol.status, BbStatus::CannotConvexify);
    }

    #[test]
    fn node_limit_returns_incumbent() {
        let h = Matrix::zeros(6, 6);
        let mut p = MiqpProblem::new(h, vec![1.0; 6], vec![VarKind::Binary; 6]);
        p.add_eq(vec![1.0; 6], 3.0);
        let sol = solve_miqp(
            &p,
            BbOptions {
                max_nodes: 1,
                ..Default::default()
            },
        );
        // With one node we may or may not find an incumbent, but must not
        // claim optimality... unless the root relaxation was already integral.
        if sol.status == BbStatus::Optimal {
            assert_close(sol.objective, 3.0);
        } else {
            assert_eq!(sol.status, BbStatus::NodeLimit);
        }
    }

    #[test]
    fn lagrangian_root_bound_is_valid() {
        // AMPS-Inf shape: two pick-one groups, diagonal H, one coupling row.
        // The bound must never exceed the brute-force optimum.
        let h = Matrix::from_diag(&[2.0, 4.0, 1.0, 3.0]);
        let mut p = MiqpProblem::new(h, vec![0.5, 0.1, 0.3, 0.2], vec![VarKind::Binary; 4]);
        p.add_pick_one(&[0, 1]);
        p.add_pick_one(&[2, 3]);
        p.add_le(vec![3.0, 1.0, 2.0, 0.5], 3.0);
        let bound = lagrangian_root_bound(&p).expect("shape matches");
        let (_, bobj) = brute_force(&p).unwrap();
        assert!(
            bound <= bobj + 1e-12,
            "dual bound {bound} exceeds optimum {bobj}"
        );
        // The bound must beat the unconstrained separable minimum (λ = 0)
        // here: the cheap columns (x₁, x₂) violate the coupling row.
        let sol = solve_miqp(&p, BbOptions::default());
        assert_eq!(sol.status, BbStatus::Optimal);
        assert_close(sol.objective, bobj);
    }

    #[test]
    fn lagrangian_root_bound_rejects_wrong_shapes() {
        // Off-diagonal quadratic term → not separable.
        let mut h = Matrix::zeros(2, 2);
        h[(0, 1)] = 1.0;
        h[(1, 0)] = 1.0;
        let mut p = MiqpProblem::new(h, vec![0.0, 0.0], vec![VarKind::Binary; 2]);
        p.add_pick_one(&[0, 1]);
        assert!(lagrangian_root_bound(&p).is_none());
        // Two coupling rows → not the single-SLO shape.
        let h = Matrix::zeros(2, 2);
        let mut p = MiqpProblem::new(h, vec![0.0, 0.0], vec![VarKind::Binary; 2]);
        p.add_pick_one(&[0, 1]);
        p.add_le(vec![1.0, 0.0], 1.0);
        p.add_le(vec![0.0, 1.0], 1.0);
        assert!(lagrangian_root_bound(&p).is_none());
    }

    #[test]
    fn warm_and_cold_starts_agree_on_quadratic_relaxations() {
        // Nonzero continuous curvature keeps the relaxations genuinely
        // quadratic (the LP fast path does not apply), so the warm-start
        // repair path actually runs — and must not change the answer.
        let h = Matrix::from_diag(&[0.0, 0.0, 0.0, 2.0]);
        let kinds = vec![
            VarKind::Binary,
            VarKind::Binary,
            VarKind::Binary,
            VarKind::Continuous,
        ];
        let mut p = MiqpProblem::new(h, vec![0.7, 0.4, 0.9, -0.8], kinds);
        p.set_bounds(3, 0.0, 1.0);
        p.add_pick_one(&[0, 1, 2]);
        p.add_le(vec![2.0, 3.0, 1.0, 1.0], 2.5);
        let warm = solve_miqp(
            &p,
            BbOptions {
                warm_start: true,
                ..Default::default()
            },
        );
        let cold = solve_miqp(
            &p,
            BbOptions {
                warm_start: false,
                ..Default::default()
            },
        );
        assert_eq!(warm.status, BbStatus::Optimal);
        assert_eq!(cold.status, BbStatus::Optimal);
        assert!(warm.stats.warm_starts > 0, "warm-start path never ran");
        assert_eq!(cold.stats.warm_starts, 0);
        assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
        assert_eq!(warm.x, cold.x);
    }

    #[test]
    fn cutoff_above_optimum_still_finds_optimum() {
        // Any node on the path to the optimum has bound ≤ optimum < cutoff,
        // so a cutoff strictly above the optimum can never cut it off.
        let h = Matrix::from_diag(&[2.0, 4.0, 1.0, 3.0]);
        let mut p = MiqpProblem::new(h, vec![0.5, 0.1, 0.3, 0.2], vec![VarKind::Binary; 4]);
        p.add_pick_one(&[0, 1]);
        p.add_pick_one(&[2, 3]);
        p.add_le(vec![3.0, 1.0, 2.0, 0.5], 3.0);
        let cold = solve_miqp(&p, BbOptions::default());
        assert_eq!(cold.status, BbStatus::Optimal);
        let cut = solve_miqp(
            &p,
            BbOptions {
                cutoff: Some(cold.objective + 0.5),
                ..Default::default()
            },
        );
        assert_eq!(cut.status, BbStatus::Optimal);
        assert_eq!(cut.objective.to_bits(), cold.objective.to_bits());
        assert_eq!(cut.x, cold.x);
    }

    #[test]
    fn cutoff_none_is_bitwise_cold() {
        let h = Matrix::from_diag(&[0.0, 0.0, 0.0, 2.0]);
        let kinds = vec![
            VarKind::Binary,
            VarKind::Binary,
            VarKind::Binary,
            VarKind::Continuous,
        ];
        let mut p = MiqpProblem::new(h, vec![0.7, 0.4, 0.9, -0.8], kinds);
        p.set_bounds(3, 0.0, 1.0);
        p.add_pick_one(&[0, 1, 2]);
        p.add_le(vec![2.0, 3.0, 1.0, 1.0], 2.5);
        let a = solve_miqp(&p, BbOptions::default());
        let b = solve_miqp(
            &p,
            BbOptions {
                cutoff: None,
                ..Default::default()
            },
        );
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        assert_eq!(a.x, b.x);
        assert_eq!(a.stats.nodes, b.stats.nodes);
        assert_eq!(b.stats.cutoff_prunes, 0);
    }

    #[test]
    fn cutoff_below_optimum_prunes_the_tree() {
        // A cutoff below every feasible objective turns the search into a
        // pure pruning exercise: whatever incumbent the heuristics stumble
        // on, the tree itself must be cut, and no returned objective may
        // be claimed strictly below the cutoff.
        let h = Matrix::zeros(6, 6);
        let mut p = MiqpProblem::new(h, vec![1.0; 6], vec![VarKind::Binary; 6]);
        p.add_eq(vec![1.0; 6], 3.0); // optimum objective = 3
        let sol = solve_miqp(
            &p,
            BbOptions {
                cutoff: Some(1.0),
                ..Default::default()
            },
        );
        if !sol.x.is_empty() {
            assert!(
                sol.objective >= 1.0,
                "objective below cutoff: {}",
                sol.objective
            );
        }
    }

    #[test]
    fn random_instances_match_brute_force() {
        // Deterministic LCG-driven random 6-binary indefinite QPs.
        let mut seed = 42u64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) * 2.0 - 1.0
        };
        for trial in 0..10 {
            let n = 6;
            let mut h = Matrix::zeros(n, n);
            for r in 0..n {
                for c in 0..n {
                    h[(r, c)] = (rng() * 4.0).round();
                }
            }
            h.symmetrize();
            let c: Vec<f64> = (0..n).map(|_| (rng() * 4.0).round()).collect();
            let mut p = MiqpProblem::new(h, c, vec![VarKind::Binary; n]);
            p.add_le(vec![1.0; n], (n as f64) - 2.0);
            let sol = solve_miqp(&p, BbOptions::default());
            let (_, bobj) = brute_force(&p).unwrap();
            assert_eq!(sol.status, BbStatus::Optimal, "trial {trial}");
            assert!(
                (sol.objective - bobj).abs() < 1e-5,
                "trial {trial}: bb {} vs brute {}",
                sol.objective,
                bobj
            );
        }
    }
}
