//! Dense two-phase primal simplex.
//!
//! Standard form accepted here: `min cᵀx` subject to `a_iᵀ x {≤,=,≥} b_i`
//! and `x ≥ 0`. This is the phase-1 engine for the active-set QP solver
//! (finding a feasible vertex of a polytope) and a fallback for purely
//! linear objectives.
//!
//! Implementation notes:
//! * rows are normalized to `b ≥ 0`; slack, surplus and artificial columns
//!   are appended as needed;
//! * phase 1 minimizes the sum of artificials, phase 2 the true objective
//!   with artificials barred from re-entering the basis;
//! * Dantzig pricing with an automatic switch to Bland's rule after a
//!   degeneracy streak, which guarantees termination.

use crate::FEAS_TOL;

/// Row sense of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `aᵀx ≤ b`
    Le,
    /// `aᵀx = b`
    Eq,
    /// `aᵀx ≥ b`
    Ge,
}

/// A linear program in `min cᵀx, x ≥ 0` form.
#[derive(Debug, Clone)]
pub struct LpProblem {
    /// Objective coefficients (length = number of structural variables).
    pub objective: Vec<f64>,
    /// Constraint rows: coefficient vector, sense, right-hand side.
    pub rows: Vec<(Vec<f64>, Relation, f64)>,
}

/// Termination status of a simplex solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// Iteration limit hit (should not happen with Bland's rule; reported
    /// rather than looping forever).
    IterationLimit,
}

/// Result of a simplex solve.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Termination status.
    pub status: LpStatus,
    /// Values of the structural variables (valid when `status == Optimal`).
    pub x: Vec<f64>,
    /// Objective value `cᵀx` (valid when `status == Optimal`).
    pub objective: f64,
    /// Simplex pivots performed across both phases.
    pub iterations: usize,
}

impl LpProblem {
    /// Creates an LP with the given objective and no rows yet.
    pub fn new(objective: Vec<f64>) -> Self {
        LpProblem {
            objective,
            rows: Vec::new(),
        }
    }

    /// Adds a constraint row.
    ///
    /// # Panics
    /// Panics if the coefficient vector length differs from the objective's.
    pub fn add_row(&mut self, coeffs: Vec<f64>, rel: Relation, rhs: f64) {
        assert_eq!(
            coeffs.len(),
            self.objective.len(),
            "LpProblem::add_row: coefficient length mismatch"
        );
        self.rows.push((coeffs, rel, rhs));
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Solves the LP with the two-phase simplex method.
    pub fn solve(&self) -> LpSolution {
        Tableau::build(self).solve()
    }
}

/// Dense simplex tableau with explicit basis bookkeeping.
struct Tableau {
    /// `m × total_cols` constraint matrix (slacks/artificials appended).
    a: Vec<Vec<f64>>,
    /// Right-hand sides, kept ≥ 0.
    b: Vec<f64>,
    /// Phase-2 objective over all columns (zeros for slack/artificial).
    cost: Vec<f64>,
    /// Basis: for each row, the column currently basic in it.
    basis: Vec<usize>,
    /// Index of the first artificial column (columns ≥ this are artificial).
    art_start: usize,
    /// Number of structural variables.
    n_struct: usize,
    iterations: usize,
}

/// Hard pivot cap; `3·(m+n)²` pivots is far beyond what these dense problems
/// need, so hitting it indicates a bug rather than a big instance.
fn iteration_cap(m: usize, n: usize) -> usize {
    3 * (m + n) * (m + n) + 1000
}

/// Consecutive degenerate (zero-step) pivots tolerated before switching to
/// Bland's anti-cycling rule.
const DEGENERATE_STREAK: usize = 30;

impl Tableau {
    fn build(p: &LpProblem) -> Tableau {
        let m = p.rows.len();
        let n = p.num_vars();
        // Count auxiliary columns.
        let mut n_slack = 0usize; // slack or surplus
        let mut n_art = 0usize;
        for (_, rel, rhs) in &p.rows {
            // After normalizing to b >= 0, Le rows get a slack (basic),
            // Ge rows get surplus + artificial, Eq rows get artificial.
            let rel = normalized_rel(*rel, *rhs);
            match rel {
                Relation::Le => n_slack += 1,
                Relation::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Relation::Eq => n_art += 1,
            }
        }
        let total = n + n_slack + n_art;
        let art_start = n + n_slack;

        let mut a = vec![vec![0.0; total]; m];
        let mut b = vec![0.0; m];
        let mut basis = vec![0usize; m];
        let mut slack_idx = n;
        let mut art_idx = art_start;

        for (r, (coeffs, rel, rhs)) in p.rows.iter().enumerate() {
            let flip = *rhs < 0.0;
            let sgn = if flip { -1.0 } else { 1.0 };
            for (j, v) in coeffs.iter().enumerate() {
                a[r][j] = sgn * v;
            }
            b[r] = sgn * rhs;
            match normalized_rel(*rel, *rhs) {
                Relation::Le => {
                    a[r][slack_idx] = 1.0;
                    basis[r] = slack_idx;
                    slack_idx += 1;
                }
                Relation::Ge => {
                    a[r][slack_idx] = -1.0; // surplus
                    slack_idx += 1;
                    a[r][art_idx] = 1.0;
                    basis[r] = art_idx;
                    art_idx += 1;
                }
                Relation::Eq => {
                    a[r][art_idx] = 1.0;
                    basis[r] = art_idx;
                    art_idx += 1;
                }
            }
        }

        let mut cost = vec![0.0; total];
        cost[..n].copy_from_slice(&p.objective);

        Tableau {
            a,
            b,
            cost,
            basis,
            art_start,
            n_struct: n,
            iterations: 0,
        }
    }

    fn solve(mut self) -> LpSolution {
        let m = self.a.len();
        let total = self.a.first().map_or(0, |r| r.len());

        // ---- Phase 1: minimize the sum of artificials. ----
        if self.art_start < total {
            let phase1_cost: Vec<f64> = (0..total)
                .map(|j| if j >= self.art_start { 1.0 } else { 0.0 })
                .collect();
            match self.run_phase(&phase1_cost, true) {
                PhaseOutcome::Optimal(obj) => {
                    if obj > FEAS_TOL {
                        return self.finish(LpStatus::Infeasible);
                    }
                }
                PhaseOutcome::Unbounded => {
                    // Phase-1 objective is bounded below by zero; unbounded
                    // here means numerical trouble. Report infeasible.
                    return self.finish(LpStatus::Infeasible);
                }
                PhaseOutcome::IterationLimit => {
                    return self.finish(LpStatus::IterationLimit);
                }
            }
            // Drive any artificial still basic (at value 0) out of the basis
            // where a structural pivot exists; otherwise the row is redundant
            // and harmless.
            for r in 0..m {
                if self.basis[r] >= self.art_start {
                    if let Some(j) = (0..self.art_start).find(|&j| self.a[r][j].abs() > 1e-9) {
                        self.pivot(r, j);
                    }
                }
            }
        }

        // ---- Phase 2: true objective, artificials barred. ----
        let cost = self.cost.clone();
        let status = match self.run_phase(&cost, false) {
            PhaseOutcome::Optimal(_) => LpStatus::Optimal,
            PhaseOutcome::Unbounded => LpStatus::Unbounded,
            PhaseOutcome::IterationLimit => LpStatus::IterationLimit,
        };
        self.finish(status)
    }

    /// Runs primal simplex with the given cost vector. `allow_art` permits
    /// artificial columns to participate (phase 1 only).
    fn run_phase(&mut self, cost: &[f64], allow_art: bool) -> PhaseOutcome {
        let m = self.a.len();
        let total = cost.len();
        let cap = iteration_cap(m, total);
        let mut degenerate_streak = 0usize;

        loop {
            if self.iterations > cap {
                return PhaseOutcome::IterationLimit;
            }
            // Reduced costs: r_j = c_j − c_Bᵀ B⁻¹ a_j. With an explicit
            // tableau the matrix already is B⁻¹A, so r_j = c_j − Σ_r c_{B(r)} a[r][j].
            let mut reduced = cost.to_vec();
            for r in 0..m {
                let cb = cost[self.basis[r]];
                if cb != 0.0 {
                    for (j, rj) in reduced.iter_mut().enumerate() {
                        *rj -= cb * self.a[r][j];
                    }
                }
            }

            let use_bland = degenerate_streak >= DEGENERATE_STREAK;
            let entering = self.choose_entering(&reduced, allow_art, use_bland, total);
            let Some(e) = entering else {
                // Optimal for this phase.
                let obj: f64 = (0..m).map(|r| cost[self.basis[r]] * self.b[r]).sum();
                return PhaseOutcome::Optimal(obj);
            };

            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..m {
                let arj = self.a[r][e];
                if arj > 1e-9 {
                    let ratio = self.b[r] / arj;
                    let better = ratio < best_ratio - 1e-12
                        || (use_bland
                            && (ratio - best_ratio).abs() <= 1e-12
                            && leave.is_some_and(|l| self.basis[r] < self.basis[l]));
                    if better || leave.is_none() && ratio <= best_ratio {
                        best_ratio = ratio;
                        leave = Some(r);
                    }
                }
            }
            let Some(l) = leave else {
                return PhaseOutcome::Unbounded;
            };
            if best_ratio <= 1e-12 {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
            }
            self.pivot(l, e);
            self.iterations += 1;
        }
    }

    fn choose_entering(
        &self,
        reduced: &[f64],
        allow_art: bool,
        use_bland: bool,
        total: usize,
    ) -> Option<usize> {
        let limit = if allow_art { total } else { self.art_start };
        if use_bland {
            (0..limit).find(|&j| reduced[j] < -FEAS_TOL)
        } else {
            let mut best = None;
            let mut best_val = -FEAS_TOL;
            for (j, &rj) in reduced.iter().enumerate().take(limit) {
                if rj < best_val {
                    best_val = rj;
                    best = Some(j);
                }
            }
            best
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let m = self.a.len();
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > 1e-12, "pivot on ~zero element");
        let inv = 1.0 / piv;
        for v in self.a[row].iter_mut() {
            *v *= inv;
        }
        self.b[row] *= inv;
        for r in 0..m {
            if r == row {
                continue;
            }
            let f = self.a[r][col];
            if f != 0.0 {
                // Manual row update; split borrows via split_at_mut-free math.
                let prow: Vec<f64> = self.a[row].clone();
                for (j, v) in self.a[r].iter_mut().enumerate() {
                    *v -= f * prow[j];
                }
                self.b[r] -= f * self.b[row];
                // Clean tiny numerical residue on the pivot column.
                self.a[r][col] = 0.0;
            }
        }
        self.basis[row] = col;
    }

    fn finish(self, status: LpStatus) -> LpSolution {
        let mut x = vec![0.0; self.n_struct];
        if status == LpStatus::Optimal {
            for (r, &bi) in self.basis.iter().enumerate() {
                if bi < self.n_struct {
                    x[bi] = self.b[r];
                }
            }
        }
        let objective = self
            .cost
            .iter()
            .take(self.n_struct)
            .zip(&x)
            .map(|(c, v)| c * v)
            .sum();
        LpSolution {
            status,
            x,
            objective,
            iterations: self.iterations,
        }
    }
}

enum PhaseOutcome {
    Optimal(f64),
    Unbounded,
    IterationLimit,
}

/// Row sense after normalizing the RHS to be non-negative: flipping a row's
/// sign flips ≤ to ≥ and vice versa.
fn normalized_rel(rel: Relation, rhs: f64) -> Relation {
    if rhs >= 0.0 {
        rel
    } else {
        match rel {
            Relation::Le => Relation::Ge,
            Relation::Ge => Relation::Le,
            Relation::Eq => Relation::Eq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_maximization_as_min() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
        let mut lp = LpProblem::new(vec![-3.0, -5.0]);
        lp.add_row(vec![1.0, 0.0], Relation::Le, 4.0);
        lp.add_row(vec![0.0, 2.0], Relation::Le, 12.0);
        lp.add_row(vec![3.0, 2.0], Relation::Le, 18.0);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, -36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 10, x − y = 2 → (6, 4).
        let mut lp = LpProblem::new(vec![1.0, 1.0]);
        lp.add_row(vec![1.0, 1.0], Relation::Eq, 10.0);
        lp.add_row(vec![1.0, -1.0], Relation::Eq, 2.0);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.x[0], 6.0);
        assert_close(s.x[1], 4.0);
    }

    #[test]
    fn ge_constraints_need_phase1() {
        // min 2x + 3y s.t. x + y ≥ 4, x + 3y ≥ 6 → (3, 1), obj 9.
        let mut lp = LpProblem::new(vec![2.0, 3.0]);
        lp.add_row(vec![1.0, 1.0], Relation::Ge, 4.0);
        lp.add_row(vec![1.0, 3.0], Relation::Ge, 6.0);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 9.0);
    }

    #[test]
    fn infeasible_detected() {
        // x ≤ 1 and x ≥ 2.
        let mut lp = LpProblem::new(vec![1.0]);
        lp.add_row(vec![1.0], Relation::Le, 1.0);
        lp.add_row(vec![1.0], Relation::Ge, 2.0);
        assert_eq!(lp.solve().status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min −x with only x ≥ 0: unbounded below.
        let lp = LpProblem::new(vec![-1.0]);
        assert_eq!(lp.solve().status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_rhs_normalization() {
        // min x s.t. −x ≤ −3  (i.e. x ≥ 3) → x = 3.
        let mut lp = LpProblem::new(vec![1.0]);
        lp.add_row(vec![-1.0], Relation::Le, -3.0);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.x[0], 3.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let mut lp = LpProblem::new(vec![-1.0, -1.0]);
        lp.add_row(vec![1.0, 0.0], Relation::Le, 1.0);
        lp.add_row(vec![0.0, 1.0], Relation::Le, 1.0);
        lp.add_row(vec![1.0, 1.0], Relation::Le, 2.0);
        lp.add_row(vec![1.0, 1.0], Relation::Le, 2.0);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, -2.0);
    }

    #[test]
    fn zero_objective_feasibility_probe() {
        // The QP phase-1 use case: find any feasible point of an SOS-1 row.
        let mut lp = LpProblem::new(vec![0.0, 0.0, 0.0]);
        lp.add_row(vec![1.0, 1.0, 1.0], Relation::Eq, 1.0);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        let sum: f64 = s.x.iter().sum();
        assert_close(sum, 1.0);
        assert!(s.x.iter().all(|&v| v >= -1e-9));
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 stated twice: phase 1 must cope with the redundant row.
        let mut lp = LpProblem::new(vec![1.0, 2.0]);
        lp.add_row(vec![1.0, 1.0], Relation::Eq, 2.0);
        lp.add_row(vec![1.0, 1.0], Relation::Eq, 2.0);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 2.0); // (2, 0)
    }

    #[test]
    fn mixed_senses() {
        // min −x − 2y s.t. x + y ≤ 4, y ≥ 1, x = 2 → (2, 2), obj −6.
        let mut lp = LpProblem::new(vec![-1.0, -2.0]);
        lp.add_row(vec![1.0, 1.0], Relation::Le, 4.0);
        lp.add_row(vec![0.0, 1.0], Relation::Ge, 1.0);
        lp.add_row(vec![1.0, 0.0], Relation::Eq, 2.0);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, -6.0);
        assert_close(s.x[1], 2.0);
    }
}
