//! Quadratic Convex Reformulation (the paper's Eq. 22–23).
//!
//! For binary `x_j`, the term `μ_j (x_j² − x_j)` vanishes at every 0/1
//! point, so adding it leaves the MIQP's optimum unchanged while reshaping
//! the *continuous relaxation*. Billionnet–Elloumi–Plateau (QCR, \[25\] in the
//! paper) pick the `μ*` that maximizes the relaxation bound by solving an
//! SDP; AMPS-Inf adopts exactly this reformulation before handing the
//! problem to an MIQP solver.
//!
//! We reproduce the reformulation with two `μ` policies (no SDP solver is
//! available offline, and the AMPS-Inf problem sizes don't need one — see
//! DESIGN.md §1 and the `ablation_qcr` bench):
//!
//! * [`ConvexifyMethod::EigenShift`] — uniform `μ_j = max(0, −λ_min(Q)) + ε`
//!   where `λ_min` is the smallest eigenvalue of the symmetrized binary
//!   block. Always yields a convex reformulation; the classical "smallest
//!   eigenvalue" scheme QCR improves upon.
//! * [`ConvexifyMethod::DualRefine`] — starts from the eigen shift and
//!   greedily lowers individual `μ_j` by coordinate search while keeping the
//!   Hessian positive semidefinite (Cholesky certificate). Crucially,
//!   `μ_j` may go *negative*: since `μ(x²−x)` vanishes on binaries,
//!   curvature can be transferred into the linear term as long as PSD
//!   holds. A smaller feasible `μ` can only increase the relaxation value
//!   at binary-infeasible points, tightening the branch-and-bound root gap
//!   — on separable (diagonal) objectives the refinement linearizes the
//!   problem completely, whose SOS-1 relaxations then solve integrally.
//!   This is the practical payoff of the paper's QCR step: AMPS-Inf's
//!   per-cut programs are diagonal (Eq. 12), and without the reformulation
//!   their relaxations spread mass across each memory group and
//!   branch-and-bound degrades toward enumeration (see the `ablation_qcr`
//!   bench).

use crate::problem::{MiqpProblem, VarKind};
use ampsinf_linalg::{Cholesky, Matrix, SymmetricEigen};

/// Which `μ` policy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConvexifyMethod {
    /// Uniform smallest-eigenvalue shift (always safe).
    EigenShift,
    /// Eigen shift followed by per-coordinate reduction (tighter bound).
    #[default]
    DualRefine,
}

/// Result of convexification: a problem whose continuous relaxation is
/// convex and whose objective agrees with the original at binary points.
#[derive(Debug, Clone)]
pub struct Convexified {
    /// The reformulated problem (same constraints, same kinds).
    pub problem: MiqpProblem,
    /// Per-variable diagonal perturbation actually applied (0 for
    /// non-binary variables).
    pub mu: Vec<f64>,
    /// The method used.
    pub method: ConvexifyMethod,
}

/// Safety margin added above the exact eigenvalue shift.
const SHIFT_EPS: f64 = 1e-9;

/// Convexifies `p` by a diagonal binary perturbation.
///
/// Requires the quadratic coupling to be confined to the binary block (the
/// AMPS-Inf per-cut structure, see
/// [`MiqpProblem::quadratic_only_on_binaries`]); returns `None` otherwise —
/// callers must then restructure their formulation.
pub fn convexify(p: &MiqpProblem, method: ConvexifyMethod) -> Option<Convexified> {
    let n = p.num_vars();
    // Closed form: DualRefine on a binary-diagonal Hessian always terminates
    // at the PSD floor `μ_j = −H_jj/2` (the coordinate search's first trial
    // at the floor keeps a diagonal block diagonal, hence SPD after the
    // ridge, so it is accepted immediately for every coordinate). Computing
    // that directly skips two eigen decompositions and all Cholesky
    // bisections — bit-identical to the search, and the shape every
    // AMPS-Inf per-cut program has (Eq. 12 is separable in the selectors).
    if method == ConvexifyMethod::DualRefine && p.quadratic_only_on_binaries() {
        let bins: Vec<usize> = p
            .kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| **k == VarKind::Binary)
            .map(|(i, _)| i)
            .collect();
        let diagonal = !bins.is_empty()
            && bins.iter().all(|&r| {
                bins.iter()
                    .all(|&c| r == c || p.qp.h[(r, c)] + p.qp.h[(c, r)] == 0.0)
            });
        if diagonal {
            let mut mu = vec![0.0; n];
            let mut problem = p.clone();
            for &i in &bins {
                mu[i] = -0.5 * p.qp.h[(i, i)];
                problem.qp.h[(i, i)] += 2.0 * mu[i];
                problem.qp.c[i] -= mu[i];
            }
            return Some(Convexified {
                problem,
                mu,
                method,
            });
        }
    }
    // Already-convex Hessians need no perturbation for correctness,
    // whatever the variable kinds. Under EigenShift that is the final
    // answer; DualRefine still improves binary-diagonal curvature below.
    let already_convex = if n > 0 {
        let mut h = p.qp.h.clone();
        h.symmetrize();
        SymmetricEigen::min_eigenvalue(&h)
            .map(|lam| lam >= -1e-10 * (1.0 + h.norm_fro()))
            .unwrap_or(false)
    } else {
        true
    };
    if already_convex && (method == ConvexifyMethod::EigenShift || !p.quadratic_only_on_binaries())
    {
        return Some(Convexified {
            problem: p.clone(),
            mu: vec![0.0; n],
            method,
        });
    }
    // Nonconvex coupling must be confined to the binary block for the
    // μ(x²−x) trick to preserve the objective on the integer lattice.
    if !p.quadratic_only_on_binaries() {
        return None;
    }
    let bins: Vec<usize> = p
        .kinds
        .iter()
        .enumerate()
        .filter(|(_, k)| **k == VarKind::Binary)
        .map(|(i, _)| i)
        .collect();

    let mut mu = vec![0.0; n];
    if !bins.is_empty() {
        // Extract the symmetric binary block of the ½xᵀHx Hessian.
        let nb = bins.len();
        let mut block = Matrix::zeros(nb, nb);
        for (r, &ir) in bins.iter().enumerate() {
            for (c, &ic) in bins.iter().enumerate() {
                block[(r, c)] = p.qp.h[(ir, ic)];
            }
        }
        block.symmetrize();
        let lam_min = SymmetricEigen::min_eigenvalue(&block).ok()?;
        // ½xᵀHx convention: adding μ_j(x_j²−x_j) adds 2μ_j to H_jj and −μ_j
        // to c_j. PSD needs H_jj shifted by ≥ −λ_min, i.e. μ_j ≥ −λ_min/2.
        let base = if lam_min < 0.0 {
            -lam_min / 2.0 + SHIFT_EPS
        } else {
            0.0
        };
        for &i in &bins {
            mu[i] = base;
        }

        if method == ConvexifyMethod::DualRefine {
            refine_mu(&block, &bins, &mut mu);
        }
    }

    let mut problem = p.clone();
    for &i in &bins {
        problem.qp.h[(i, i)] += 2.0 * mu[i];
        problem.qp.c[i] -= mu[i];
    }
    Some(Convexified {
        problem,
        mu,
        method,
    })
}

/// Coordinate search: lower each `μ_j` as far as PSD allows (bisection
/// with a Cholesky certificate), a few passes. `μ_j` may go negative down
/// to `−H_jj/2` — the point where the perturbed diagonal reaches zero,
/// which is the hard PSD necessity. `block` is the original binary Hessian
/// block; `mu` holds the current per-variable shifts.
fn refine_mu(block: &Matrix, bins: &[usize], mu: &mut [f64]) {
    let nb = bins.len();
    let shifted = |mu: &[f64]| -> Matrix {
        let mut m = block.clone();
        for (r, &ir) in bins.iter().enumerate() {
            m[(r, r)] += 2.0 * mu[ir];
        }
        m
    };
    const PASSES: usize = 3;
    const BISECTIONS: usize = 24;
    for _ in 0..PASSES {
        let mut changed = false;
        for k in 0..nb {
            let i = bins[k];
            // PSD requires the perturbed diagonal to stay ≥ 0:
            // block_kk + 2μ ≥ 0 ⇔ μ ≥ −block_kk/2.
            let floor = -0.5 * block[(k, k)];
            if mu[i] <= floor + 1e-15 {
                continue;
            }
            let mut lo = floor;
            let mut hi = mu[i];
            let mut trial = mu.to_vec();
            trial[i] = lo;
            if Cholesky::is_spd(&regularized(&shifted(&trial))) {
                mu[i] = lo;
                changed = true;
                continue;
            }
            for _ in 0..BISECTIONS {
                let mid = 0.5 * (lo + hi);
                trial[i] = mid;
                if Cholesky::is_spd(&regularized(&shifted(&trial))) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            if hi < mu[i] - 1e-12 {
                mu[i] = hi;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

/// Tiny diagonal regularization so the PSD certificate tolerates exact
/// semidefiniteness at the boundary.
fn regularized(m: &Matrix) -> Matrix {
    let mut r = m.clone();
    r.shift_diagonal(1e-9 * (1.0 + m.norm_fro()));
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampsinf_linalg::Matrix;

    /// Indefinite 2-binary problem: H = [[0,6],[6,0]] (λ = ±6).
    fn indefinite() -> MiqpProblem {
        let h = Matrix::from_rows(&[&[0.0, 6.0], &[6.0, 0.0]]);
        MiqpProblem::new(h, vec![-1.0, -2.0], vec![VarKind::Binary, VarKind::Binary])
    }

    #[test]
    fn objective_preserved_at_binary_points() {
        let p = indefinite();
        for method in [ConvexifyMethod::EigenShift, ConvexifyMethod::DualRefine] {
            let conv = convexify(&p, method).unwrap();
            for x in [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]] {
                let orig = p.objective_at(&x);
                let reform = conv.problem.objective_at(&x);
                assert!(
                    (orig - reform).abs() < 1e-9,
                    "{method:?} changed objective at {x:?}: {orig} vs {reform}"
                );
            }
        }
    }

    #[test]
    fn reformulated_hessian_is_psd() {
        let p = indefinite();
        for method in [ConvexifyMethod::EigenShift, ConvexifyMethod::DualRefine] {
            let conv = convexify(&p, method).unwrap();
            let mut h = conv.problem.qp.h.clone();
            h.symmetrize();
            let lam = SymmetricEigen::min_eigenvalue(&h).unwrap();
            assert!(lam >= -1e-8, "{method:?}: λmin = {lam}");
        }
    }

    #[test]
    fn already_convex_problem_untouched_by_eigen_shift() {
        let h = Matrix::from_diag(&[2.0, 4.0]);
        let p = MiqpProblem::new(h, vec![0.0, 0.0], vec![VarKind::Binary, VarKind::Binary]);
        let conv = convexify(&p, ConvexifyMethod::EigenShift).unwrap();
        assert_eq!(conv.mu, vec![0.0, 0.0]);
        assert_eq!(conv.problem.qp.h, p.qp.h);
    }

    #[test]
    fn dual_refine_linearizes_diagonal_binary_quadratics() {
        // The QCR tightening on a separable convex objective: μ_j = −Q_j/2
        // zeroes the Hessian and folds the curvature into the linear term,
        // exactly preserving binary objectives.
        let h = Matrix::from_diag(&[2.0, 4.0]);
        let p = MiqpProblem::new(h, vec![1.0, -1.0], vec![VarKind::Binary, VarKind::Binary]);
        let conv = convexify(&p, ConvexifyMethod::DualRefine).unwrap();
        assert!(conv.mu[0] < 0.0 && conv.mu[1] < 0.0, "{:?}", conv.mu);
        assert!(conv.problem.qp.h.norm_fro() < 1e-6, "Hessian should vanish");
        for x in [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]] {
            assert!((conv.problem.objective_at(&x) - p.objective_at(&x)).abs() < 1e-7);
        }
        // And the relaxation is tighter at fractional points.
        assert!(conv.problem.objective_at(&[0.5, 0.5]) > p.objective_at(&[0.5, 0.5]) - 1e-9);
    }

    #[test]
    fn relaxation_optimum_lower_bounds_binary_optimum() {
        // The *minimum* of the convexified relaxation over [0,1]² must
        // lower-bound the binary optimum (this is the bound B&B prunes on).
        let p = indefinite();
        let conv = convexify(&p, ConvexifyMethod::EigenShift).unwrap();
        let binary_best = [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]]
            .iter()
            .map(|x| p.objective_at(x.as_slice()))
            .fold(f64::INFINITY, f64::min);
        let rel = conv.problem.qp.solve();
        assert_eq!(rel.status, crate::qp::QpStatus::Optimal);
        assert!(
            rel.objective <= binary_best + 1e-7,
            "relaxation {} above binary best {}",
            rel.objective,
            binary_best
        );
    }

    #[test]
    fn dual_refine_bound_at_least_as_tight() {
        // At any fractional point, the DualRefine objective (smaller μ)
        // is ≥ the EigenShift objective: tighter relaxation.
        let p = indefinite();
        let eig = convexify(&p, ConvexifyMethod::EigenShift).unwrap();
        let refi = convexify(&p, ConvexifyMethod::DualRefine).unwrap();
        for x in [[0.5, 0.5], [0.25, 0.75], [0.9, 0.1]] {
            let a = eig.problem.objective_at(&x);
            let b = refi.problem.objective_at(&x);
            assert!(b >= a - 1e-7, "refined bound looser at {x:?}: {b} < {a}");
        }
    }

    #[test]
    fn rejects_nonconvex_non_binary_quadratics() {
        // Concave curvature on a continuous variable cannot be repaired by
        // a binary diagonal perturbation.
        let h = Matrix::from_diag(&[1.0, -1.0]);
        let p = MiqpProblem::new(
            h,
            vec![0.0, 0.0],
            vec![VarKind::Binary, VarKind::Continuous],
        );
        assert!(convexify(&p, ConvexifyMethod::EigenShift).is_none());
    }

    #[test]
    fn convex_quadratic_on_non_binaries_is_identity() {
        // PSD Hessian touching continuous/integer vars: no μ needed.
        let h = Matrix::from_diag(&[1.0, 1.0]);
        let p = MiqpProblem::new(
            h,
            vec![0.0, 0.0],
            vec![VarKind::Integer, VarKind::Continuous],
        );
        let conv = convexify(&p, ConvexifyMethod::DualRefine).unwrap();
        assert_eq!(conv.mu, vec![0.0, 0.0]);
    }

    #[test]
    fn no_binaries_is_identity() {
        let h = Matrix::zeros(2, 2);
        let p = MiqpProblem::new(
            h,
            vec![1.0, 2.0],
            vec![VarKind::Continuous, VarKind::Integer],
        );
        let conv = convexify(&p, ConvexifyMethod::DualRefine).unwrap();
        assert_eq!(conv.mu, vec![0.0, 0.0]);
    }
}
