//! Primal active-set solver for convex quadratic programs.
//!
//! Solves
//! ```text
//! min  ½ xᵀHx + cᵀx + k
//! s.t. Aeq x = beq
//!      Ain x ≤ bin
//!      lb ≤ x ≤ ub        (entries may be ±∞)
//! ```
//! with `H` symmetric positive semidefinite (the QCR step in [`crate::qcr`]
//! guarantees this for the relaxations branch-and-bound feeds in).
//!
//! The method is the textbook primal active set (Nocedal & Wright,
//! Alg. 16.3): maintain a working set of active constraints, solve the
//! equality-constrained subproblem via its KKT system, take the longest
//! feasible step, and add/drop constraints based on blocking and multiplier
//! signs. A feasible starting point is produced by a zero-objective phase-1
//! run of the [`crate::lp`] simplex.

use crate::lp::{LpProblem, LpSolution, LpStatus, Relation};
use crate::FEAS_TOL;
use ampsinf_linalg::{vector, LuFactors, Matrix};

/// Reusable scratch buffers for QP solves.
///
/// Every active-set iteration assembles and factors a KKT system; with fresh
/// allocations that dominates the relaxation cost inside branch-and-bound,
/// which solves thousands of closely-sized relaxations per MIQP. Holding one
/// `QpWorkspace` per thread and passing it to
/// [`QpProblem::solve_with`] makes those solves allocation-free at steady
/// state without changing a single floating-point operation.
#[derive(Debug, Clone)]
pub struct QpWorkspace {
    /// KKT matrix `[H+εI Aᵀ; A 0]`, resized per working set.
    kkt: Matrix,
    /// LU factors of `kkt`, refactored in place.
    lu: LuFactors,
    /// KKT right-hand side `(-g, 0)`.
    rhs: Vec<f64>,
    /// KKT solution `(p, λ)`.
    sol: Vec<f64>,
    /// Scratch unit vector for bound-constraint gradients.
    e: Vec<f64>,
}

impl QpWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        QpWorkspace {
            kkt: Matrix::zeros(0, 0),
            lu: LuFactors::new(),
            rhs: Vec::new(),
            sol: Vec::new(),
            e: Vec::new(),
        }
    }
}

impl Default for QpWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

/// A convex QP instance.
#[derive(Debug, Clone)]
pub struct QpProblem {
    /// Symmetric PSD Hessian (`n × n`).
    pub h: Matrix,
    /// Linear coefficients (length `n`).
    pub c: Vec<f64>,
    /// Constant objective offset.
    pub constant: f64,
    /// Equality rows `(a, b)`: `aᵀx = b`.
    pub eq: Vec<(Vec<f64>, f64)>,
    /// Inequality rows `(a, b)`: `aᵀx ≤ b`.
    pub ineq: Vec<(Vec<f64>, f64)>,
    /// Lower bounds (may be `f64::NEG_INFINITY`).
    pub lb: Vec<f64>,
    /// Upper bounds (may be `f64::INFINITY`).
    pub ub: Vec<f64>,
}

/// Termination status of a QP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpStatus {
    /// KKT point found (global optimum for convex `H`).
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// Iteration cap reached; `x` holds the best feasible iterate.
    IterationLimit,
}

/// Result of a QP solve.
#[derive(Debug, Clone)]
pub struct QpSolution {
    /// Termination status.
    pub status: QpStatus,
    /// Primal point (feasible whenever status isn't `Infeasible`).
    pub x: Vec<f64>,
    /// Objective value at `x`, including the constant offset.
    pub objective: f64,
    /// Active-set iterations performed.
    pub iterations: usize,
}

/// How a QP variable maps onto LP columns (the simplex wants `x ≥ 0`).
#[derive(Clone, Copy)]
enum MapKind {
    /// Finite lower bound: one column, shifted by `lb`.
    Shifted { col: usize, lb: f64 },
    /// Free below: split into a plus/minus pair.
    Split { plus: usize, minus: usize },
}

/// An entry of the active-set working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WsEntry {
    /// Inequality row index, active as equality.
    Ineq(usize),
    /// Variable at its lower bound.
    Lower(usize),
    /// Variable at its upper bound.
    Upper(usize),
}

impl QpProblem {
    /// Creates an unconstrained QP skeleton; push constraints/bounds after.
    pub fn new(h: Matrix, c: Vec<f64>) -> Self {
        let n = c.len();
        assert_eq!(h.rows(), n, "QpProblem: H and c dimension mismatch");
        assert!(h.is_square(), "QpProblem: H must be square");
        QpProblem {
            h,
            c,
            constant: 0.0,
            eq: Vec::new(),
            ineq: Vec::new(),
            lb: vec![f64::NEG_INFINITY; n],
            ub: vec![f64::INFINITY; n],
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.c.len()
    }

    /// Objective value at `x` (including constant offset).
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        0.5 * self.h.quad_form(x) + vector::dot(&self.c, x) + self.constant
    }

    /// Max constraint violation at `x` (0 = feasible).
    pub fn violation(&self, x: &[f64]) -> f64 {
        let mut v = 0.0f64;
        for (a, b) in &self.eq {
            v = v.max((vector::dot(a, x) - b).abs());
        }
        for (a, b) in &self.ineq {
            v = v.max(vector::dot(a, x) - b);
        }
        for i in 0..x.len() {
            v = v.max(self.lb[i] - x[i]).max(x[i] - self.ub[i]);
        }
        v.max(0.0)
    }

    /// True when `x` satisfies all constraints to tolerance.
    pub fn is_feasible(&self, x: &[f64]) -> bool {
        self.violation(x) <= 10.0 * FEAS_TOL
    }

    /// Solves the QP with a throwaway workspace.
    pub fn solve(&self) -> QpSolution {
        self.solve_with(&mut QpWorkspace::new())
    }

    /// Solves the QP, reusing `ws` for all internal allocations. Produces
    /// bit-identical results to [`solve`](QpProblem::solve).
    pub fn solve_with(&self, ws: &mut QpWorkspace) -> QpSolution {
        self.solve_with_hint(None, ws).0
    }

    /// Solves the QP, optionally warm-starting the active-set loop from
    /// `hint`. A hint that is feasible (after clamping onto the box) skips
    /// the phase-1 simplex entirely — the hot-path saving branch-and-bound
    /// exploits, since a child node's optimum sits next to its parent's.
    /// An infeasible or missing hint falls back to the cold start. Returns
    /// the solution and whether the hint was used.
    pub fn solve_with_hint(
        &self,
        hint: Option<&[f64]>,
        ws: &mut QpWorkspace,
    ) -> (QpSolution, bool) {
        let n = self.num_vars();
        // Fast-path: all variables fixed by bounds.
        if (0..n).all(|i| (self.ub[i] - self.lb[i]).abs() <= 1e-12) {
            let x: Vec<f64> = self.lb.clone();
            let status = if self.is_feasible(&x) {
                QpStatus::Optimal
            } else {
                QpStatus::Infeasible
            };
            return (
                QpSolution {
                    objective: self.objective_at(&x),
                    status,
                    x,
                    iterations: 0,
                },
                false,
            );
        }

        // Zero Hessian → the instance is a linear program. One two-phase
        // simplex run replaces the phase-1 probe *and* the active-set loop,
        // whose steepest-descent steps degenerate-cycle on flat objectives.
        // The QCR `DualRefine` step zeroes binary-diagonal Hessians exactly,
        // so every branch-and-bound relaxation of the AMPS-Inf per-cut MIQP
        // lands here.
        if self.is_linear() {
            if let Some(sol) = self.solve_linear() {
                return (sol, false);
            }
        }

        if let Some(h) = hint {
            if h.len() == n {
                let x0: Vec<f64> = h
                    .iter()
                    .enumerate()
                    .map(|(i, v)| v.clamp(self.lb[i], self.ub[i]))
                    .collect();
                if self.is_feasible(&x0) {
                    return (self.active_set(x0, ws), true);
                }
            }
        }

        let Some(x0) = self.find_feasible_start() else {
            return (
                QpSolution {
                    status: QpStatus::Infeasible,
                    x: vec![0.0; n],
                    objective: f64::INFINITY,
                    iterations: 0,
                },
                false,
            );
        };
        (self.active_set(x0, ws), false)
    }

    /// True when the Hessian is identically zero, i.e. the instance is a
    /// linear program in disguise.
    pub fn is_linear(&self) -> bool {
        let n = self.num_vars();
        (0..n).all(|r| (0..n).all(|c| self.h[(r, c)] == 0.0))
    }

    /// Maps each variable onto LP columns (the simplex requires `x ≥ 0`):
    /// finite-lb variables shift by their bound, free-below variables split
    /// into a plus/minus pair. Returns the map and the LP column count.
    fn lp_column_map(&self) -> (Vec<MapKind>, usize) {
        let n = self.num_vars();
        let mut map = Vec::with_capacity(n);
        let mut ncols = 0usize;
        for i in 0..n {
            if self.lb[i].is_finite() {
                map.push(MapKind::Shifted {
                    col: ncols,
                    lb: self.lb[i],
                });
                ncols += 1;
            } else {
                map.push(MapKind::Split {
                    plus: ncols,
                    minus: ncols + 1,
                });
                ncols += 2;
            }
        }
        (map, ncols)
    }

    /// Builds the LP over the mapped columns: all equality/inequality rows
    /// plus finite upper bounds as rows. `objective = None` gives the
    /// zero-objective phase-1 feasibility probe; `Some(c)` minimizes `cᵀx`.
    fn build_lp(&self, map: &[MapKind], ncols: usize, objective: Option<&[f64]>) -> LpProblem {
        let n = self.num_vars();
        let expand = |a: &[f64], row: &mut Vec<f64>, rhs_shift: &mut f64| {
            for i in 0..n {
                match map[i] {
                    MapKind::Shifted { col, lb } => {
                        row[col] += a[i];
                        *rhs_shift += a[i] * lb;
                    }
                    MapKind::Split { plus, minus } => {
                        row[plus] += a[i];
                        row[minus] -= a[i];
                    }
                }
            }
        };

        let mut obj = vec![0.0; ncols];
        if let Some(c) = objective {
            for i in 0..n {
                match map[i] {
                    MapKind::Shifted { col, .. } => obj[col] = c[i],
                    MapKind::Split { plus, minus } => {
                        obj[plus] = c[i];
                        obj[minus] = -c[i];
                    }
                }
            }
        }
        let mut lp = LpProblem::new(obj);
        for (a, b) in &self.eq {
            let mut row = vec![0.0; ncols];
            let mut shift = 0.0;
            expand(a, &mut row, &mut shift);
            lp.add_row(row, Relation::Eq, b - shift);
        }
        for (a, b) in &self.ineq {
            let mut row = vec![0.0; ncols];
            let mut shift = 0.0;
            expand(a, &mut row, &mut shift);
            lp.add_row(row, Relation::Le, b - shift);
        }
        // Upper bounds become rows over the mapped columns.
        for i in 0..n {
            if self.ub[i].is_finite() {
                let mut a = vec![0.0; n];
                a[i] = 1.0;
                let mut row = vec![0.0; ncols];
                let mut shift = 0.0;
                expand(&a, &mut row, &mut shift);
                lp.add_row(row, Relation::Le, self.ub[i] - shift);
            }
        }
        lp
    }

    /// Maps an LP solution back onto the QP variables, snapping 1e-12-scale
    /// bound violations from the simplex onto the box.
    fn lp_solution_to_x(&self, map: &[MapKind], sol: &LpSolution) -> Vec<f64> {
        (0..self.num_vars())
            .map(|i| {
                let v = match map[i] {
                    MapKind::Shifted { col, lb } => lb + sol.x[col],
                    MapKind::Split { plus, minus } => sol.x[plus] - sol.x[minus],
                };
                v.clamp(self.lb[i], self.ub[i])
            })
            .collect()
    }

    /// Phase-1: find any feasible point via the simplex on shifted/split
    /// variables (LP requires `x ≥ 0`).
    fn find_feasible_start(&self) -> Option<Vec<f64>> {
        let (map, ncols) = self.lp_column_map();
        let sol: LpSolution = self.build_lp(&map, ncols, None).solve();
        if sol.status != LpStatus::Optimal {
            return None;
        }
        let x = self.lp_solution_to_x(&map, &sol);
        if self.is_feasible(&x) {
            Some(x)
        } else {
            None
        }
    }

    /// Solves a zero-Hessian instance as a linear program. Returns `None`
    /// when the simplex outcome can't be consumed directly (unbounded ray or
    /// iteration limit — the caller falls back to the active-set path).
    fn solve_linear(&self) -> Option<QpSolution> {
        let (map, ncols) = self.lp_column_map();
        let sol = self.build_lp(&map, ncols, Some(&self.c)).solve();
        match sol.status {
            LpStatus::Infeasible => Some(QpSolution {
                status: QpStatus::Infeasible,
                x: vec![0.0; self.num_vars()],
                objective: f64::INFINITY,
                iterations: sol.iterations,
            }),
            LpStatus::Optimal => {
                let x = self.lp_solution_to_x(&map, &sol);
                if !self.is_feasible(&x) {
                    return None;
                }
                Some(QpSolution {
                    status: QpStatus::Optimal,
                    objective: self.objective_at(&x),
                    x,
                    iterations: sol.iterations,
                })
            }
            LpStatus::Unbounded | LpStatus::IterationLimit => None,
        }
    }

    /// Primal active-set loop from a feasible `x0`.
    fn active_set(&self, mut x: Vec<f64>, buf: &mut QpWorkspace) -> QpSolution {
        let n = self.num_vars();
        let neq = self.eq.len();
        let cap = 100 * (n + neq + self.ineq.len()) + 200;

        // Initial working set: constraints active at x0.
        let mut ws: Vec<WsEntry> = Vec::new();
        for (k, (a, b)) in self.ineq.iter().enumerate() {
            if (vector::dot(a, &x) - b).abs() <= FEAS_TOL {
                ws.push(WsEntry::Ineq(k));
            }
        }
        for i in 0..n {
            let fixed = (self.ub[i] - self.lb[i]).abs() <= 1e-12;
            if self.lb[i].is_finite() && (x[i] - self.lb[i]).abs() <= FEAS_TOL {
                ws.push(WsEntry::Lower(i));
            } else if !fixed && self.ub[i].is_finite() && (x[i] - self.ub[i]).abs() <= FEAS_TOL {
                ws.push(WsEntry::Upper(i));
            }
        }

        let mut iterations = 0usize;
        // Anti-cycling: after a streak of zero-length (degenerate) steps,
        // switch constraint selection to Bland's lowest-identifier rule,
        // which provably terminates for the simplex-like degenerate case.
        let mut degenerate_streak = 0usize;
        const BLAND_AFTER: usize = 20;
        // Per-solve buffers, reused across iterations.
        let mut g = vec![0.0; n];
        let mut p = vec![0.0; n];
        let mut lambda: Vec<f64> = Vec::new();
        loop {
            if iterations > cap {
                return QpSolution {
                    status: QpStatus::IterationLimit,
                    objective: self.objective_at(&x),
                    x,
                    iterations,
                };
            }
            iterations += 1;
            let bland = degenerate_streak >= BLAND_AFTER;

            // Gradient at current x.
            self.h.matvec_into(&x, &mut g);
            vector::axpy(1.0, &self.c, &mut g);

            if self.solve_eqp(&g, &ws, buf, &mut p, &mut lambda).is_none() {
                // Degenerate working set: drop the newest inequality entry.
                if ws.pop().is_none() {
                    // Unconstrained singular KKT despite ridge — should not
                    // happen; return what we have.
                    return QpSolution {
                        status: QpStatus::IterationLimit,
                        objective: self.objective_at(&x),
                        x,
                        iterations,
                    };
                }
                continue;
            }

            let p_norm = vector::norm_inf(&p);
            if p_norm <= 1e-9 {
                // Stationary on the working set; check multipliers.
                match most_negative_multiplier(&ws, &lambda, neq, bland) {
                    None => {
                        return QpSolution {
                            status: QpStatus::Optimal,
                            objective: self.objective_at(&x),
                            x,
                            iterations,
                        };
                    }
                    Some(idx) => {
                        ws.remove(idx);
                        continue;
                    }
                }
            }

            // Longest feasible step along p.
            let (alpha, blocking) = self.max_step(&x, &p, &ws, bland);
            let step = alpha.min(1.0);
            vector::axpy(step, &p, &mut x);
            // Numerical hygiene: snap onto bounds we are at.
            for i in 0..n {
                x[i] = x[i].clamp(self.lb[i], self.ub[i]);
            }
            if step * p_norm <= 1e-12 {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
            }

            if alpha < 1.0 {
                if let Some(entry) = blocking {
                    if !ws.contains(&entry) {
                        ws.push(entry);
                    }
                }
            } else {
                // Full step: λ from this EQP are the multipliers at x + p.
                match most_negative_multiplier(&ws, &lambda, neq, bland) {
                    None => {
                        return QpSolution {
                            status: QpStatus::Optimal,
                            objective: self.objective_at(&x),
                            x,
                            iterations,
                        };
                    }
                    Some(idx) => {
                        ws.remove(idx);
                    }
                }
            }
        }
    }

    /// Solves the equality-constrained subproblem
    /// `min ½pᵀHp + gᵀp  s.t.  (active gradients)·p = 0`
    /// writing the step into `p` and the multipliers into `lambda`.
    /// Multipliers are ordered: equality rows first, then working-set
    /// entries in `ws` order. Returns `None` when the KKT matrix is
    /// singular (dependent working set). All heavy storage lives in `buf`.
    fn solve_eqp(
        &self,
        g: &[f64],
        ws: &[WsEntry],
        buf: &mut QpWorkspace,
        p: &mut Vec<f64>,
        lambda: &mut Vec<f64>,
    ) -> Option<()> {
        let n = self.num_vars();
        let neq = self.eq.len();
        let m = neq + ws.len();
        let dim = n + m;
        let QpWorkspace {
            kkt,
            lu,
            rhs,
            sol,
            e,
        } = buf;
        kkt.reset_zeros(dim, dim);
        for r in 0..n {
            for c in 0..n {
                kkt[(r, c)] = self.h[(r, c)];
            }
            // Tiny ridge keeps the KKT nonsingular when H is only PSD
            // (e.g. zero curvature on linear variables). The perturbation is
            // orders of magnitude below branching tolerances.
            kkt[(r, r)] += 1e-10;
        }
        let put_row = |kkt: &mut Matrix, idx: usize, grad: &[f64]| {
            for c in 0..n {
                kkt[(n + idx, c)] = grad[c];
                kkt[(c, n + idx)] = grad[c];
            }
        };
        for (k, (a, _)) in self.eq.iter().enumerate() {
            put_row(kkt, k, a);
        }
        e.clear();
        e.resize(n, 0.0);
        for (k, entry) in ws.iter().enumerate() {
            match entry {
                WsEntry::Ineq(r) => put_row(kkt, neq + k, &self.ineq[*r].0),
                WsEntry::Lower(i) => {
                    e.fill(0.0);
                    e[*i] = -1.0;
                    put_row(kkt, neq + k, e);
                }
                WsEntry::Upper(i) => {
                    e.fill(0.0);
                    e[*i] = 1.0;
                    put_row(kkt, neq + k, e);
                }
            }
        }
        rhs.clear();
        rhs.resize(dim, 0.0);
        for i in 0..n {
            rhs[i] = -g[i];
        }
        lu.factor_from(kkt).ok()?;
        lu.solve_into(rhs, sol);
        p.clear();
        p.extend_from_slice(&sol[..n]);
        lambda.clear();
        lambda.extend_from_slice(&sol[n..]);
        Some(())
    }

    /// Longest feasible step along `p` and the constraint that blocks it.
    /// Under `bland`, ties among blocking constraints resolve to the lowest
    /// identifier (anti-cycling).
    fn max_step(
        &self,
        x: &[f64],
        p: &[f64],
        ws: &[WsEntry],
        bland: bool,
    ) -> (f64, Option<WsEntry>) {
        let mut alpha = f64::INFINITY;
        let mut blocking = None;
        for (k, (a, b)) in self.ineq.iter().enumerate() {
            if ws.contains(&WsEntry::Ineq(k)) {
                continue;
            }
            let ap = vector::dot(a, p);
            if ap > 1e-10 {
                let slack = b - vector::dot(a, x);
                let t = (slack / ap).max(0.0);
                if better(t, alpha, WsEntry::Ineq(k), blocking, bland) {
                    alpha = t;
                    blocking = Some(WsEntry::Ineq(k));
                }
            }
        }
        for i in 0..x.len() {
            if p[i] < -1e-10 && self.lb[i].is_finite() && !ws.contains(&WsEntry::Lower(i)) {
                let t = ((self.lb[i] - x[i]) / p[i]).max(0.0);
                if better(t, alpha, WsEntry::Lower(i), blocking, bland) {
                    alpha = t;
                    blocking = Some(WsEntry::Lower(i));
                }
            } else if p[i] > 1e-10 && self.ub[i].is_finite() && !ws.contains(&WsEntry::Upper(i)) {
                let t = ((self.ub[i] - x[i]) / p[i]).max(0.0);
                if better(t, alpha, WsEntry::Upper(i), blocking, bland) {
                    alpha = t;
                    blocking = Some(WsEntry::Upper(i));
                }
            }
        }
        (alpha, blocking)
    }
}

/// Stable identifier for Bland-style tie-breaking.
fn entry_id(e: WsEntry) -> (u8, usize) {
    match e {
        WsEntry::Ineq(k) => (0, k),
        WsEntry::Lower(i) => (1, i),
        WsEntry::Upper(i) => (2, i),
    }
}

/// Whether candidate step `t` (blocked by `cand`) improves on the current
/// `(alpha, blocking)` choice; under Bland, near-ties resolve to the lowest
/// identifier.
fn better(t: f64, alpha: f64, cand: WsEntry, blocking: Option<WsEntry>, bland: bool) -> bool {
    if t < alpha - 1e-12 {
        return true;
    }
    if bland && t <= alpha + 1e-12 {
        return match blocking {
            None => true,
            Some(b) => entry_id(cand) < entry_id(b),
        };
    }
    t < alpha
}

/// Index (within `ws`) of the multiplier to drop, or `None` if all are
/// ≥ −tol (KKT satisfied). `lambda` is ordered equality rows first, then
/// `ws` entries. Default policy: most negative; under Bland: the negative
/// multiplier with the lowest working-set identifier (anti-cycling).
fn most_negative_multiplier(
    ws: &[WsEntry],
    lambda: &[f64],
    neq: usize,
    bland: bool,
) -> Option<usize> {
    if bland {
        return ws
            .iter()
            .enumerate()
            .filter(|(k, _)| lambda[neq + k] < -1e-8)
            .min_by_key(|(_, e)| entry_id(**e))
            .map(|(k, _)| k);
    }
    let mut worst = -1e-8;
    let mut idx = None;
    for (k, _) in ws.iter().enumerate() {
        let l = lambda[neq + k];
        if l < worst {
            worst = l;
            idx = Some(k);
        }
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "{a} != {b}");
    }

    #[test]
    fn unconstrained_quadratic() {
        // min (x−1)² + (y−2)² → (1, 2).
        let h = Matrix::from_diag(&[2.0, 2.0]);
        let qp = QpProblem::new(h, vec![-2.0, -4.0]);
        let s = qp.solve();
        assert_eq!(s.status, QpStatus::Optimal);
        assert_close(s.x[0], 1.0);
        assert_close(s.x[1], 2.0);
    }

    #[test]
    fn box_constrained() {
        // min (x−3)² with x ∈ [0, 1] → x = 1.
        let h = Matrix::from_diag(&[2.0]);
        let mut qp = QpProblem::new(h, vec![-6.0]);
        qp.lb = vec![0.0];
        qp.ub = vec![1.0];
        let s = qp.solve();
        assert_eq!(s.status, QpStatus::Optimal);
        assert_close(s.x[0], 1.0);
    }

    #[test]
    fn equality_constrained() {
        // min x² + y² s.t. x + y = 2 → (1, 1).
        let h = Matrix::from_diag(&[2.0, 2.0]);
        let mut qp = QpProblem::new(h, vec![0.0, 0.0]);
        qp.eq.push((vec![1.0, 1.0], 2.0));
        let s = qp.solve();
        assert_eq!(s.status, QpStatus::Optimal);
        assert_close(s.x[0], 1.0);
        assert_close(s.x[1], 1.0);
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn nocedal_wright_example_16_4() {
        // min (x1−1)² + (x2−2.5)²
        // s.t. x1 − 2x2 + 2 ≥ 0, −x1 − 2x2 + 6 ≥ 0, −x1 + 2x2 + 2 ≥ 0,
        //      x1 ≥ 0, x2 ≥ 0  →  (1.4, 1.7).
        let h = Matrix::from_diag(&[2.0, 2.0]);
        let mut qp = QpProblem::new(h, vec![-2.0, -5.0]);
        qp.constant = 1.0 + 6.25;
        qp.ineq.push((vec![-1.0, 2.0], 2.0));
        qp.ineq.push((vec![1.0, 2.0], 6.0));
        qp.ineq.push((vec![1.0, -2.0], 2.0));
        qp.lb = vec![0.0, 0.0];
        let s = qp.solve();
        assert_eq!(s.status, QpStatus::Optimal);
        assert_close(s.x[0], 1.4);
        assert_close(s.x[1], 1.7);
    }

    #[test]
    fn sos1_relaxation_shape() {
        // The AMPS-Inf relaxation shape: x ∈ [0,1]^3, Σx = 1, convex diag Q.
        // min 3x₀² + 1x₁² + 2x₂² + (0, 0, 0)ᵀx: optimum splits by inverse
        // curvature: x ∝ (1/3, 1, 1/2) normalized → (2/11, 6/11, 3/11).
        let h = Matrix::from_diag(&[6.0, 2.0, 4.0]);
        let mut qp = QpProblem::new(h, vec![0.0, 0.0, 0.0]);
        qp.eq.push((vec![1.0, 1.0, 1.0], 1.0));
        qp.lb = vec![0.0; 3];
        qp.ub = vec![1.0; 3];
        let s = qp.solve();
        assert_eq!(s.status, QpStatus::Optimal);
        assert_close(s.x[0], 2.0 / 11.0);
        assert_close(s.x[1], 6.0 / 11.0);
        assert_close(s.x[2], 3.0 / 11.0);
    }

    #[test]
    fn infeasible_detected() {
        let h = Matrix::from_diag(&[2.0]);
        let mut qp = QpProblem::new(h, vec![0.0]);
        qp.lb = vec![0.0];
        qp.ub = vec![1.0];
        qp.eq.push((vec![1.0], 5.0));
        assert_eq!(qp.solve().status, QpStatus::Infeasible);
    }

    #[test]
    fn fixed_variables_fast_path() {
        let h = Matrix::from_diag(&[2.0, 2.0]);
        let mut qp = QpProblem::new(h, vec![0.0, 0.0]);
        qp.lb = vec![1.0, 0.5];
        qp.ub = vec![1.0, 0.5];
        let s = qp.solve();
        assert_eq!(s.status, QpStatus::Optimal);
        assert_eq!(s.x, vec![1.0, 0.5]);
        assert_close(s.objective, 1.0 + 0.25);
    }

    #[test]
    fn active_bound_has_correct_side() {
        // min (x+5)² with x ∈ [0, 2] → x = 0 (lower bound active).
        let h = Matrix::from_diag(&[2.0]);
        let mut qp = QpProblem::new(h, vec![10.0]);
        qp.lb = vec![0.0];
        qp.ub = vec![2.0];
        let s = qp.solve();
        assert_eq!(s.status, QpStatus::Optimal);
        assert_close(s.x[0], 0.0);
    }

    #[test]
    fn semidefinite_hessian_with_linear_part() {
        // H singular (one zero row): min x² + y over x free-ish, y ∈ [0, 3],
        // x ∈ [-1, 1] → (0, 0).
        let h = Matrix::from_diag(&[2.0, 0.0]);
        let mut qp = QpProblem::new(h, vec![0.0, 1.0]);
        qp.lb = vec![-1.0, 0.0];
        qp.ub = vec![1.0, 3.0];
        let s = qp.solve();
        assert_eq!(s.status, QpStatus::Optimal);
        assert_close(s.x[0], 0.0);
        assert_close(s.x[1], 0.0);
    }

    #[test]
    fn inequality_becomes_active() {
        // min (x−2)² + (y−2)² s.t. x + y ≤ 2 → (1, 1).
        let h = Matrix::from_diag(&[2.0, 2.0]);
        let mut qp = QpProblem::new(h, vec![-4.0, -4.0]);
        qp.ineq.push((vec![1.0, 1.0], 2.0));
        let s = qp.solve();
        assert_eq!(s.status, QpStatus::Optimal);
        assert_close(s.x[0], 1.0);
        assert_close(s.x[1], 1.0);
    }

    #[test]
    fn objective_at_matches_solution_objective() {
        let h = Matrix::from_diag(&[2.0, 2.0]);
        let mut qp = QpProblem::new(h, vec![-2.0, -4.0]);
        qp.constant = 7.0;
        let s = qp.solve();
        assert_close(s.objective, qp.objective_at(&s.x));
    }

    #[test]
    fn linear_fast_path_matches_known_optimum() {
        // Zero Hessian → solved as an LP in one simplex run. Pick-one over
        // three costs with a coupling row: min 3x₀ + 1x₁ + 2x₂,
        // Σx = 1, x₁ ≤ 0 effectively via 5x₁ ≤ 2 → cheapest admissible is x₂.
        let h = Matrix::zeros(3, 3);
        let mut qp = QpProblem::new(h, vec![3.0, 1.0, 2.0]);
        qp.eq.push((vec![1.0, 1.0, 1.0], 1.0));
        qp.ineq.push((vec![0.0, 5.0, 0.0], 2.0));
        qp.lb = vec![0.0; 3];
        qp.ub = vec![1.0; 3];
        assert!(qp.is_linear());
        let s = qp.solve();
        assert_eq!(s.status, QpStatus::Optimal);
        // LP optimum: put 2/5 on x₁ (cost 1), rest on x₂ (cost 2) → 1.6.
        assert_close(s.objective, 0.4 * 1.0 + 0.6 * 2.0);
        assert!(qp.is_feasible(&s.x));
    }

    #[test]
    fn linear_fast_path_detects_infeasible() {
        let h = Matrix::zeros(2, 2);
        let mut qp = QpProblem::new(h, vec![1.0, 1.0]);
        qp.lb = vec![0.0; 2];
        qp.ub = vec![1.0; 2];
        qp.eq.push((vec![1.0, 1.0], 3.0));
        assert!(qp.is_linear());
        assert_eq!(qp.solve().status, QpStatus::Infeasible);
    }

    #[test]
    fn is_linear_rejects_nonzero_hessian() {
        let h = Matrix::from_diag(&[0.0, 1e-300]);
        let qp = QpProblem::new(h, vec![0.0, 0.0]);
        assert!(!qp.is_linear());
    }

    #[test]
    fn violation_reports_worst() {
        let h = Matrix::from_diag(&[2.0]);
        let mut qp = QpProblem::new(h, vec![0.0]);
        qp.lb = vec![0.0];
        qp.ub = vec![1.0];
        qp.ineq.push((vec![1.0], 0.5));
        assert_close(qp.violation(&[2.0]), 1.5); // ineq violated by 1.5, ub by 1.0
        assert!(qp.is_feasible(&[0.25]));
    }
}
