//! Property-style tests: the B&B MIQP solver against brute-force oracles,
//! KKT conditions for the QP, and LP invariants. Inputs come from a
//! deterministic PRNG (no external property-testing dependency).

use ampsinf_linalg::{vector, Matrix};
use ampsinf_solver::bb::solve_miqp;
use ampsinf_solver::{
    BbOptions, LpProblem, LpStatus, MiqpProblem, QpProblem, QpStatus, Relation, VarKind,
};

/// Deterministic LCG over `[0, 1)`.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed)
    }

    fn unit(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as f64 / u32::MAX as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    fn vec(&mut self, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|_| self.range(lo, hi)).collect()
    }

    fn int(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.unit() * (hi - lo + 1) as f64) as i64
    }

    /// Random symmetric integer-ish Hessian over `n` binaries.
    fn binary_hessian(&mut self, n: usize) -> Matrix {
        let data: Vec<f64> = (0..n * n).map(|_| self.int(-3, 3) as f64).collect();
        let mut m = Matrix::from_vec(n, n, data);
        m.symmetrize();
        m
    }
}

/// Brute-force oracle over all binary assignments.
fn brute_force(p: &MiqpProblem) -> Option<f64> {
    let bins = p.integral_indices();
    let mut best: Option<f64> = None;
    for mask in 0u64..(1 << bins.len()) {
        let mut x = vec![0.0; p.num_vars()];
        for (b, &i) in bins.iter().enumerate() {
            x[i] = ((mask >> b) & 1) as f64;
        }
        if p.qp.is_feasible(&x) {
            let obj = p.objective_at(&x);
            best = Some(best.map_or(obj, |o: f64| o.min(obj)));
        }
    }
    best
}

const CASES: usize = 24;

#[test]
fn bb_matches_brute_force_unconstrained() {
    let mut g = Gen::new(11);
    for _ in 0..CASES {
        let h = g.binary_hessian(5);
        let c = g.vec(5, -4.0, 4.0);
        let p = MiqpProblem::new(h, c, vec![VarKind::Binary; 5]);
        let sol = solve_miqp(&p, BbOptions::default());
        let oracle = brute_force(&p).unwrap();
        assert!(matches!(sol.status, ampsinf_solver::bb::BbStatus::Optimal));
        assert!(
            (sol.objective - oracle).abs() < 1e-5,
            "bb {} vs oracle {}",
            sol.objective,
            oracle
        );
    }
}

#[test]
fn bb_matches_brute_force_with_cardinality() {
    let mut g = Gen::new(12);
    for _ in 0..CASES {
        let h = g.binary_hessian(5);
        let c = g.vec(5, -4.0, 4.0);
        let k = g.int(1, 4);
        let mut p = MiqpProblem::new(h, c, vec![VarKind::Binary; 5]);
        p.add_le(vec![1.0; 5], k as f64);
        let sol = solve_miqp(&p, BbOptions::default());
        let oracle = brute_force(&p).unwrap();
        assert!((sol.objective - oracle).abs() < 1e-5);
    }
}

#[test]
fn bb_sos1_groups() {
    let mut g = Gen::new(13);
    for _ in 0..CASES {
        // Two pick-one groups of 3 — exactly the AMPS-Inf Eq. (1) structure.
        let h = g.binary_hessian(6);
        let c = g.vec(6, -4.0, 4.0);
        let mut p = MiqpProblem::new(h, c, vec![VarKind::Binary; 6]);
        p.add_pick_one(&[0, 1, 2]);
        p.add_pick_one(&[3, 4, 5]);
        let sol = solve_miqp(&p, BbOptions::default());
        let oracle = brute_force(&p).unwrap();
        assert!((sol.objective - oracle).abs() < 1e-5);
        // Solution respects the groups.
        let g1: f64 = sol.x[0] + sol.x[1] + sol.x[2];
        let g2: f64 = sol.x[3] + sol.x[4] + sol.x[5];
        assert!((g1 - 1.0).abs() < 1e-6 && (g2 - 1.0).abs() < 1e-6);
    }
}

#[test]
fn qp_kkt_stationarity_on_box() {
    let mut gen = Gen::new(14);
    for _ in 0..CASES {
        // Convex separable QP on [0,1]^5: projected-gradient optimality —
        // interior coordinates have zero gradient, boundary ones point out.
        let diag = gen.vec(5, 0.5, 4.0);
        let c = gen.vec(5, -4.0, 4.0);
        let h = Matrix::from_diag(&diag);
        let mut qp = QpProblem::new(h, c);
        qp.lb = vec![0.0; 5];
        qp.ub = vec![1.0; 5];
        let s = qp.solve();
        assert_eq!(s.status, QpStatus::Optimal);
        let mut g = qp.h.matvec(&s.x);
        vector::axpy(1.0, &qp.c, &mut g);
        for (i, (&xi, &gi)) in s.x.iter().zip(g.iter()).enumerate() {
            if xi > 1e-6 && xi < 1.0 - 1e-6 {
                assert!(gi.abs() < 1e-5, "interior grad {gi} at {i}");
            } else if xi <= 1e-6 {
                assert!(gi > -1e-5, "lower-bound grad {gi} at {i}");
            } else {
                assert!(gi < 1e-5, "upper-bound grad {gi} at {i}");
            }
        }
    }
}

#[test]
fn qp_simplex_relaxation_optimum_separable() {
    let mut g = Gen::new(15);
    for _ in 0..CASES {
        // min ½ Σ d_i x_i² on the simplex: optimum x_i ∝ 1/d_i.
        let diag = g.vec(4, 1.0, 4.0);
        let h = Matrix::from_diag(&diag);
        let mut qp = QpProblem::new(h, vec![0.0; 4]);
        qp.eq.push((vec![1.0; 4], 1.0));
        qp.lb = vec![0.0; 4];
        qp.ub = vec![1.0; 4];
        let s = qp.solve();
        assert_eq!(s.status, QpStatus::Optimal);
        let z: f64 = diag.iter().map(|d| 1.0 / d).sum();
        for (xi, di) in s.x.iter().zip(diag.iter()) {
            assert!((xi - (1.0 / di) / z).abs() < 1e-5);
        }
    }
}

#[test]
fn lp_optimal_is_feasible_and_bounded_by_any_point() {
    let mut g = Gen::new(16);
    for _ in 0..CASES {
        // min cᵀx (c > 0) with Σx ≥ b_k rows: optimum exists; every feasible
        // point we can construct scores no better.
        let c = g.vec(4, 0.1, 5.0);
        let b = g.vec(3, 1.0, 10.0);
        let mut lp = LpProblem::new(c.clone());
        for bk in &b {
            lp.add_row(vec![1.0; 4], Relation::Ge, *bk);
        }
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        // Feasible comparison point: put everything on coordinate 0.
        let need = b.iter().cloned().fold(0.0f64, f64::max);
        let manual = c[0] * need;
        assert!(s.objective <= manual + 1e-7);
        // And the optimum satisfies the rows.
        let sum: f64 = s.x.iter().sum();
        assert!(sum >= need - 1e-7);
    }
}

#[test]
fn lp_infeasible_when_bounds_conflict() {
    let mut g = Gen::new(17);
    for _ in 0..CASES {
        let ub = g.range(0.5, 5.0);
        let mut lp = LpProblem::new(vec![1.0]);
        lp.add_row(vec![1.0], Relation::Le, ub);
        lp.add_row(vec![1.0], Relation::Ge, ub + 1.0);
        assert_eq!(lp.solve().status, LpStatus::Infeasible);
    }
}

#[test]
fn bb_sos1_with_budget_row_matches_oracle() {
    let mut g = Gen::new(18);
    for _ in 0..CASES {
        // The AMPS-Inf SLO structure at solver level: two pick-one groups,
        // linear costs, and a budget row over "durations". Oracle:
        // exhaustive over the 9 feasible picks.
        let costs = g.vec(6, 0.1, 5.0);
        let times = g.vec(6, 0.1, 5.0);
        let slack = g.range(0.2, 1.0);
        let h = Matrix::zeros(6, 6);
        let mut p = MiqpProblem::new(h, costs.clone(), vec![VarKind::Binary; 6]);
        p.add_pick_one(&[0, 1, 2]);
        p.add_pick_one(&[3, 4, 5]);
        // Budget between the loosest and tightest achievable totals.
        let min_t = times[..3].iter().cloned().fold(f64::INFINITY, f64::min)
            + times[3..].iter().cloned().fold(f64::INFINITY, f64::min);
        let max_t = times[..3].iter().cloned().fold(0.0f64, f64::max)
            + times[3..].iter().cloned().fold(0.0f64, f64::max);
        let budget = min_t + slack * (max_t - min_t);
        p.add_le(times.clone(), budget);

        let mut oracle: Option<f64> = None;
        for a in 0..3 {
            for b in 3..6 {
                if times[a] + times[b] <= budget + 1e-12 {
                    let c = costs[a] + costs[b];
                    oracle = Some(oracle.map_or(c, |o: f64| o.min(c)));
                }
            }
        }
        let sol = solve_miqp(&p, BbOptions::default());
        let oracle = oracle.expect("budget chosen feasible");
        assert!(
            (sol.objective - oracle).abs() < 1e-6,
            "bb {} vs oracle {}",
            sol.objective,
            oracle
        );
    }
}

#[test]
fn bb_objective_invariant_under_qcr_method() {
    let mut g = Gen::new(19);
    for _ in 0..CASES {
        // Both convexification policies must land on the same optimum.
        let h = g.binary_hessian(5);
        let c = g.vec(5, -4.0, 4.0);
        let mut p1 = MiqpProblem::new(h.clone(), c.clone(), vec![VarKind::Binary; 5]);
        p1.add_le(vec![1.0; 5], 3.0);
        let mut p2 = p1.clone();
        p2.qp = p1.qp.clone();
        let s1 = solve_miqp(
            &p1,
            BbOptions {
                convexify: ampsinf_solver::ConvexifyMethod::EigenShift,
                ..Default::default()
            },
        );
        let s2 = solve_miqp(
            &p2,
            BbOptions {
                convexify: ampsinf_solver::ConvexifyMethod::DualRefine,
                ..Default::default()
            },
        );
        assert!(
            (s1.objective - s2.objective).abs() < 1e-5,
            "eig {} vs refine {}",
            s1.objective,
            s2.objective
        );
    }
}
