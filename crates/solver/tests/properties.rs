//! Property-based tests: the B&B MIQP solver against brute-force oracles,
//! KKT conditions for the QP, and LP invariants.

use ampsinf_linalg::{vector, Matrix};
use ampsinf_solver::bb::solve_miqp;
use ampsinf_solver::{
    BbOptions, LpProblem, LpStatus, MiqpProblem, QpProblem, QpStatus, Relation, VarKind,
};
use proptest::prelude::*;

/// Random symmetric integer-ish Hessian over `n` binaries.
fn binary_hessian(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-3i32..=3, n * n).prop_map(move |v| {
        let mut m = Matrix::from_vec(n, n, v.into_iter().map(f64::from).collect());
        m.symmetrize();
        m
    })
}

/// Brute-force oracle over all binary assignments.
fn brute_force(p: &MiqpProblem) -> Option<f64> {
    let bins = p.integral_indices();
    let mut best: Option<f64> = None;
    for mask in 0u64..(1 << bins.len()) {
        let mut x = vec![0.0; p.num_vars()];
        for (b, &i) in bins.iter().enumerate() {
            x[i] = ((mask >> b) & 1) as f64;
        }
        if p.qp.is_feasible(&x) {
            let obj = p.objective_at(&x);
            best = Some(best.map_or(obj, |o: f64| o.min(obj)));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bb_matches_brute_force_unconstrained(
        h in binary_hessian(5),
        c in prop::collection::vec(-4.0f64..4.0, 5),
    ) {
        let p = MiqpProblem::new(h, c, vec![VarKind::Binary; 5]);
        let sol = solve_miqp(&p, BbOptions::default());
        let oracle = brute_force(&p).unwrap();
        prop_assert!(matches!(sol.status, ampsinf_solver::bb::BbStatus::Optimal));
        prop_assert!((sol.objective - oracle).abs() < 1e-5,
            "bb {} vs oracle {}", sol.objective, oracle);
    }

    #[test]
    fn bb_matches_brute_force_with_cardinality(
        h in binary_hessian(5),
        c in prop::collection::vec(-4.0f64..4.0, 5),
        k in 1usize..5,
    ) {
        let mut p = MiqpProblem::new(h, c, vec![VarKind::Binary; 5]);
        p.add_le(vec![1.0; 5], k as f64);
        let sol = solve_miqp(&p, BbOptions::default());
        let oracle = brute_force(&p).unwrap();
        prop_assert!((sol.objective - oracle).abs() < 1e-5);
    }

    #[test]
    fn bb_sos1_groups(
        h in binary_hessian(6),
        c in prop::collection::vec(-4.0f64..4.0, 6),
    ) {
        // Two pick-one groups of 3 — exactly the AMPS-Inf Eq. (1) structure.
        let mut p = MiqpProblem::new(h, c, vec![VarKind::Binary; 6]);
        p.add_pick_one(&[0, 1, 2]);
        p.add_pick_one(&[3, 4, 5]);
        let sol = solve_miqp(&p, BbOptions::default());
        let oracle = brute_force(&p).unwrap();
        prop_assert!((sol.objective - oracle).abs() < 1e-5);
        // Solution respects the groups.
        let g1: f64 = sol.x[0] + sol.x[1] + sol.x[2];
        let g2: f64 = sol.x[3] + sol.x[4] + sol.x[5];
        prop_assert!((g1 - 1.0).abs() < 1e-6 && (g2 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn qp_kkt_stationarity_on_box(
        diag in prop::collection::vec(0.5f64..4.0, 5),
        c in prop::collection::vec(-4.0f64..4.0, 5),
    ) {
        // Convex separable QP on [0,1]^5: projected-gradient optimality —
        // interior coordinates have zero gradient, boundary ones point out.
        let h = Matrix::from_diag(&diag);
        let mut qp = QpProblem::new(h, c);
        qp.lb = vec![0.0; 5];
        qp.ub = vec![1.0; 5];
        let s = qp.solve();
        prop_assert_eq!(s.status, QpStatus::Optimal);
        let mut g = qp.h.matvec(&s.x);
        vector::axpy(1.0, &qp.c, &mut g);
        for i in 0..5 {
            if s.x[i] > 1e-6 && s.x[i] < 1.0 - 1e-6 {
                prop_assert!(g[i].abs() < 1e-5, "interior grad {} at {}", g[i], i);
            } else if s.x[i] <= 1e-6 {
                prop_assert!(g[i] > -1e-5, "lower-bound grad {} at {}", g[i], i);
            } else {
                prop_assert!(g[i] < 1e-5, "upper-bound grad {} at {}", g[i], i);
            }
        }
    }

    #[test]
    fn qp_simplex_relaxation_optimum_separable(
        diag in prop::collection::vec(1.0f64..4.0, 4),
    ) {
        // min ½ Σ d_i x_i² on the simplex: optimum x_i ∝ 1/d_i.
        let h = Matrix::from_diag(&diag);
        let mut qp = QpProblem::new(h, vec![0.0; 4]);
        qp.eq.push((vec![1.0; 4], 1.0));
        qp.lb = vec![0.0; 4];
        qp.ub = vec![1.0; 4];
        let s = qp.solve();
        prop_assert_eq!(s.status, QpStatus::Optimal);
        let z: f64 = diag.iter().map(|d| 1.0 / d).sum();
        for i in 0..4 {
            prop_assert!((s.x[i] - (1.0 / diag[i]) / z).abs() < 1e-5);
        }
    }

    #[test]
    fn lp_optimal_is_feasible_and_bounded_by_any_point(
        c in prop::collection::vec(0.1f64..5.0, 4),
        b in prop::collection::vec(1.0f64..10.0, 3),
    ) {
        // min cᵀx (c > 0) with Σx ≥ b_k rows: optimum exists; every feasible
        // point we can construct scores no better.
        let mut lp = LpProblem::new(c.clone());
        for bk in &b {
            lp.add_row(vec![1.0; 4], Relation::Ge, *bk);
        }
        let s = lp.solve();
        prop_assert_eq!(s.status, LpStatus::Optimal);
        // Feasible comparison point: put everything on coordinate 0.
        let need = b.iter().cloned().fold(0.0f64, f64::max);
        let manual = c[0] * need;
        prop_assert!(s.objective <= manual + 1e-7);
        // And the optimum satisfies the rows.
        let sum: f64 = s.x.iter().sum();
        prop_assert!(sum >= need - 1e-7);
    }

    #[test]
    fn lp_infeasible_when_bounds_conflict(ub in 0.5f64..5.0) {
        let mut lp = LpProblem::new(vec![1.0]);
        lp.add_row(vec![1.0], Relation::Le, ub);
        lp.add_row(vec![1.0], Relation::Ge, ub + 1.0);
        prop_assert_eq!(lp.solve().status, LpStatus::Infeasible);
    }

    #[test]
    fn bb_sos1_with_budget_row_matches_oracle(
        costs in prop::collection::vec(0.1f64..5.0, 6),
        times in prop::collection::vec(0.1f64..5.0, 6),
        slack in 0.2f64..1.0,
    ) {
        // The AMPS-Inf SLO structure at solver level: two pick-one groups,
        // linear costs, and a budget row over "durations". Oracle:
        // exhaustive over the 9 feasible picks.
        let h = Matrix::zeros(6, 6);
        let mut p = MiqpProblem::new(h, costs.clone(), vec![VarKind::Binary; 6]);
        p.add_pick_one(&[0, 1, 2]);
        p.add_pick_one(&[3, 4, 5]);
        // Budget between the loosest and tightest achievable totals.
        let min_t = times[..3].iter().cloned().fold(f64::INFINITY, f64::min)
            + times[3..].iter().cloned().fold(f64::INFINITY, f64::min);
        let max_t = times[..3].iter().cloned().fold(0.0f64, f64::max)
            + times[3..].iter().cloned().fold(0.0f64, f64::max);
        let budget = min_t + slack * (max_t - min_t);
        p.add_le(times.clone(), budget);

        let mut oracle: Option<f64> = None;
        for a in 0..3 {
            for b in 3..6 {
                if times[a] + times[b] <= budget + 1e-12 {
                    let c = costs[a] + costs[b];
                    oracle = Some(oracle.map_or(c, |o: f64| o.min(c)));
                }
            }
        }
        let sol = solve_miqp(&p, BbOptions::default());
        let oracle = oracle.expect("budget chosen feasible");
        prop_assert!((sol.objective - oracle).abs() < 1e-6,
            "bb {} vs oracle {}", sol.objective, oracle);
    }

    #[test]
    fn bb_objective_invariant_under_qcr_method(
        h in binary_hessian(5),
        c in prop::collection::vec(-4.0f64..4.0, 5),
    ) {
        // Both convexification policies must land on the same optimum.
        let mut p1 = MiqpProblem::new(h.clone(), c.clone(), vec![VarKind::Binary; 5]);
        p1.add_le(vec![1.0; 5], 3.0);
        let mut p2 = p1.clone();
        p2.qp = p1.qp.clone();
        let s1 = solve_miqp(&p1, BbOptions {
            convexify: ampsinf_solver::ConvexifyMethod::EigenShift,
            ..Default::default()
        });
        let s2 = solve_miqp(&p2, BbOptions {
            convexify: ampsinf_solver::ConvexifyMethod::DualRefine,
            ..Default::default()
        });
        prop_assert!((s1.objective - s2.objective).abs() < 1e-5,
            "eig {} vs refine {}", s1.objective, s2.objective);
    }
}
