//! Simulator-substrate throughput: profiling, closed-form segment
//! evaluation (the optimizer's inner loop), and full platform invocations.

use ampsinf_bench::harness::Bencher;
use ampsinf_core::AmpsConfig;
use ampsinf_faas::platform::Platform;
use ampsinf_faas::runtime::whole_model;
use ampsinf_model::zoo;
use ampsinf_profiler::{quick_eval, Profile};

fn main() {
    let mut b = Bencher::new();

    for g in [zoo::mobilenet_v1(), zoo::resnet50(), zoo::inception_v3()] {
        b.bench(&format!("profile_build/{}", g.name), 20, || Profile::of(&g));
    }

    let g = zoo::resnet50();
    let profile = Profile::of(&g);
    let cfg = AmpsConfig::default();
    let n = g.num_layers();
    b.bench("quick_eval/resnet_mid_segment", 20, || {
        quick_eval(
            &profile,
            n / 3,
            2 * n / 3,
            1024,
            &cfg.quotas,
            &cfg.prices,
            &cfg.perf,
            &cfg.store,
            false,
            false,
        )
    });

    let g = zoo::mobilenet_v1();
    let work = whole_model(&g);
    b.bench("platform/deploy_invoke_mobilenet", 20, || {
        let mut p = Platform::aws_2020();
        let spec = work.function_spec("m", 1024);
        let (fid, _) = p.deploy(spec).unwrap();
        p.invoke(fid, 0.0, &work.invocation(None, None)).unwrap()
    });

    b.bench("zoo_build/resnet50", 20, zoo::resnet50);
    b.bench("zoo_build/inception_v3", 20, zoo::inception_v3);

    b.write_json_if_requested();
}
