//! Simulator-substrate throughput: profiling, closed-form segment
//! evaluation (the optimizer's inner loop), full platform invocations,
//! and the sharded serving engine (`BENCH_serving.json`).

use ampsinf_bench::harness::Bencher;
use ampsinf_core::{AmpsConfig, Coordinator, Optimizer};
use ampsinf_faas::platform::Platform;
use ampsinf_faas::runtime::whole_model;
use ampsinf_faas::{SmallRng, WarmPoolPolicy};
use ampsinf_model::zoo;
use ampsinf_profiler::{quick_eval, Profile};
use ampsinf_serving::{ArrivalShape, LoadSpec};

/// The paper's multi-partition workhorse on the open-loop engine: same
/// lane count for every variant, so the serial→8-thread ratio isolates
/// pure execution parallelism (results are bit-identical by construction).
fn bench_serving(b: &mut Bencher) {
    let g = zoo::resnet50();
    let base = AmpsConfig::default().with_serve_lanes(64);
    let plan = Optimizer::new(base.clone()).optimize(&g).unwrap().plan;

    const REQUESTS: usize = 100_000;
    let mut rng = SmallRng::seed_from_u64(97);
    let mut arrivals = Vec::with_capacity(REQUESTS);
    let mut t = 0.0f64;
    for _ in 0..REQUESTS {
        t += -rng.next_f64_open().ln() / 100.0; // 100 rps Poisson
        arrivals.push(t);
    }

    let mut dollars = Vec::new();
    for threads in [1usize, 8] {
        let coord = Coordinator::new(base.clone().with_serve_threads(threads));
        b.bench_items(
            &format!("open_loop/resnet50/100k/threads={threads}"),
            3,
            REQUESTS,
            || {
                let mut platform = coord.platform();
                let dep = coord.deploy(&mut platform, &g, &plan).unwrap();
                let trace = coord.serve_trace(&mut platform, &dep, &arrivals);
                dollars.push(trace.dollars.to_bits());
                trace.last_completion_s
            },
        );
    }
    assert!(
        dollars.windows(2).all(|w| w[0] == w[1]),
        "thread counts disagreed on dollars"
    );

    // Pipelined stations over the same trace: stage i of request k+1
    // overlaps stage i+1 of request k, so the hot path adds per-stage
    // station bookkeeping — and must stay bit-identical across threads.
    let mut pipe_dollars = Vec::new();
    for threads in [1usize, 8] {
        let coord = Coordinator::new(base.clone().with_pipeline(2).with_serve_threads(threads));
        b.bench_items(
            &format!("open_loop/resnet50/100k/pipeline/threads={threads}"),
            3,
            REQUESTS,
            || {
                let mut platform = coord.platform();
                let dep = coord.deploy(&mut platform, &g, &plan).unwrap();
                let trace = coord.serve_trace_pipelined(&mut platform, &dep, &arrivals);
                pipe_dollars.push(trace.dollars.to_bits());
                trace.last_completion_s
            },
        );
    }
    assert!(
        pipe_dollars.windows(2).all(|w| w[0] == w[1]),
        "pipelined thread counts disagreed on dollars"
    );

    // The bursty end of the workload space: a flash-crowd arrival shape
    // over a billed provisioned pool — the work-stealing queues see the
    // most skewed per-lane load this engine produces.
    let spike = LoadSpec::poisson(100.0, REQUESTS, 97)
        .with_shape(ArrivalShape::flash_crowd())
        .arrivals();
    let spike_coord = Coordinator::new(base.clone().with_warm_pool(WarmPoolPolicy::provisioned(2)));
    b.bench_items("open_loop/resnet50/100k/shape=spike", 3, REQUESTS, || {
        let mut platform = spike_coord.platform();
        let dep = spike_coord.deploy(&mut platform, &g, &plan).unwrap();
        let trace = spike_coord.serve_trace(&mut platform, &dep, &spike);
        assert!(trace.idle_dollars > 0.0);
        trace.last_completion_s
    });

    // Branch-parallel DAG serving: the inception-v3 batch-64 winner (9 of
    // 11 regions parallelized, 47 nodes) through the same open-loop
    // work-stealing engine. Bit-equal dollars across thread counts is the
    // determinism contract; the single-CPU container means the threads=8
    // row measures overhead, not speedup (see BENCH_serving.json notes).
    let dag_cfg = AmpsConfig {
        batch_size: 64,
        ..AmpsConfig::default()
    }
    .with_serve_lanes(64);
    let dag_plan = Optimizer::new(dag_cfg.clone())
        .optimize_dag(&zoo::inception_v3())
        .unwrap()
        .dag
        .expect("inception_v3 at batch 64 must have a branch-parallel winner");
    let inception = zoo::inception_v3();
    let mut dag_dollars = Vec::new();
    for threads in [1usize, 8] {
        let coord = Coordinator::new(dag_cfg.clone().with_serve_threads(threads));
        b.bench_items(
            &format!("open_loop_dag/inception_v3/100k/threads={threads}"),
            3,
            REQUESTS,
            || {
                let mut platform = coord.platform();
                let dep = coord
                    .deploy_dag(&mut platform, &inception, &dag_plan)
                    .unwrap();
                let trace = coord.serve_trace_dag(&mut platform, &dep, &arrivals);
                dag_dollars.push(trace.dollars.to_bits());
                trace.last_completion_s
            },
        );
    }
    assert!(
        dag_dollars.windows(2).all(|w| w[0] == w[1]),
        "DAG thread counts disagreed on dollars"
    );

    // The key-interning / scratch-reuse win shows up serially: the same
    // engine, single lane, no threads — pure hot-path allocation savings.
    let seq_cfg = AmpsConfig::default();
    let seq_plan = Optimizer::new(seq_cfg.clone()).optimize(&g).unwrap().plan;
    let coord = Coordinator::new(seq_cfg.clone());
    b.bench_items("serve_sequential/resnet50/1k", 5, 1000, || {
        let mut platform = coord.platform();
        let dep = coord.deploy(&mut platform, &g, &seq_plan).unwrap();
        coord
            .serve_sequential(&mut platform, &dep, 1000, 0.0)
            .dollars
    });

    // Same closed batch through the pipelined stations: simulated
    // makespan drops to fill + (n-1) * bottleneck instead of n * chain,
    // so the throughput column moves past the sequential-chain bound.
    let pipe_coord = Coordinator::new(seq_cfg.with_pipeline(1));
    b.bench_items("serve_pipelined/resnet50/1k", 5, 1000, || {
        let mut platform = pipe_coord.platform();
        let dep = pipe_coord.deploy(&mut platform, &g, &seq_plan).unwrap();
        pipe_coord
            .serve_pipelined(&mut platform, &dep, 1000, 0.0)
            .dollars
    });
}

fn main() {
    let mut b = Bencher::new();

    for g in [zoo::mobilenet_v1(), zoo::resnet50(), zoo::inception_v3()] {
        b.bench(&format!("profile_build/{}", g.name), 20, || Profile::of(&g));
    }

    let g = zoo::resnet50();
    let profile = Profile::of(&g);
    let cfg = AmpsConfig::default();
    let n = g.num_layers();
    b.bench("quick_eval/resnet_mid_segment", 20, || {
        quick_eval(
            &profile,
            n / 3,
            2 * n / 3,
            1024,
            &cfg.quotas,
            &cfg.prices,
            &cfg.perf,
            &cfg.store,
            false,
            false,
        )
    });

    let g = zoo::mobilenet_v1();
    let work = whole_model(&g);
    b.bench("platform/deploy_invoke_mobilenet", 20, || {
        let mut p = Platform::aws_2020();
        let spec = work.function_spec("m", 1024);
        let (fid, _) = p.deploy(spec).unwrap();
        p.invoke(fid, 0.0, &work.invocation(None, None)).unwrap()
    });

    b.bench("zoo_build/resnet50", 20, zoo::resnet50);
    b.bench("zoo_build/inception_v3", 20, zoo::inception_v3);

    bench_serving(&mut b);

    // The recorded serving baseline lives at the repo root (same
    // convention as BENCH_optimizer.json). Override with BENCH_BASELINE.
    b.compare_with_baseline("../../BENCH_serving.json");
    b.write_json_if_requested();
}
