//! Simulator-substrate throughput: profiling, closed-form segment
//! evaluation (the optimizer's inner loop), and full platform invocations.

use ampsinf_core::AmpsConfig;
use ampsinf_faas::platform::Platform;
use ampsinf_faas::runtime::whole_model;
use ampsinf_model::zoo;
use ampsinf_profiler::{quick_eval, Profile};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_profile_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_build");
    for g in [zoo::mobilenet_v1(), zoo::resnet50(), zoo::inception_v3()] {
        group.bench_with_input(BenchmarkId::from_parameter(&g.name), &g, |b, g| {
            b.iter(|| black_box(Profile::of(g)))
        });
    }
    group.finish();
}

fn bench_quick_eval(c: &mut Criterion) {
    let g = zoo::resnet50();
    let profile = Profile::of(&g);
    let cfg = AmpsConfig::default();
    let n = g.num_layers();
    c.bench_function("quick_eval_resnet_mid_segment", |b| {
        b.iter(|| {
            black_box(quick_eval(
                &profile,
                n / 3,
                2 * n / 3,
                1024,
                &cfg.quotas,
                &cfg.prices,
                &cfg.perf,
                &cfg.store,
                false,
                false,
            ))
        })
    });
}

fn bench_platform_invoke(c: &mut Criterion) {
    let g = zoo::mobilenet_v1();
    let work = whole_model(&g);
    c.bench_function("platform_deploy_invoke_mobilenet", |b| {
        b.iter(|| {
            let mut p = Platform::aws_2020();
            let spec = work.function_spec("m", 1024);
            let (fid, _) = p.deploy(spec).unwrap();
            black_box(p.invoke(fid, 0.0, &work.invocation(None, None)).unwrap())
        })
    });
}

fn bench_model_zoo(c: &mut Criterion) {
    let mut group = c.benchmark_group("zoo_build");
    group.bench_function("resnet50", |b| b.iter(|| black_box(zoo::resnet50())));
    group.bench_function("inception_v3", |b| b.iter(|| black_box(zoo::inception_v3())));
    group.finish();
}

criterion_group!(
    benches,
    bench_profile_build,
    bench_quick_eval,
    bench_platform_invoke,
    bench_model_zoo
);
criterion_main!(benches);
