//! Benches for the optimization stack: simplex, active-set QP, and
//! branch-and-bound MIQP at AMPS-Inf-like problem shapes.
//!
//! The QP bench runs both the one-shot and workspace-reuse entry points so
//! the allocation-hoisting win is visible in one report.

use ampsinf_bench::harness::Bencher;
use ampsinf_linalg::Matrix;
use ampsinf_solver::bb::{solve_miqp, solve_miqp_with};
use ampsinf_solver::{
    BbOptions, LpProblem, MiqpProblem, QpProblem, QpWorkspace, Relation, VarKind,
};

/// A feasible LP with `n` variables and `n` rows.
fn lp_instance(n: usize) -> LpProblem {
    let mut lp = LpProblem::new((0..n).map(|i| 1.0 + (i % 7) as f64).collect());
    for r in 0..n {
        let mut row = vec![0.0; n];
        row[r] = 1.0;
        row[(r + 1) % n] = 1.0;
        lp.add_row(row, Relation::Ge, 1.0 + (r % 3) as f64);
    }
    lp
}

/// A convex QP over the simplex with `n` variables.
fn qp_instance(n: usize) -> QpProblem {
    let diag: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
    let mut qp = QpProblem::new(Matrix::from_diag(&diag), vec![0.0; n]);
    qp.eq.push((vec![1.0; n], 1.0));
    qp.lb = vec![0.0; n];
    qp.ub = vec![1.0; n];
    qp
}

/// A SOS-1-structured MIQP like AMPS-Inf's per-cut problem: `groups`
/// pick-one groups of `width` binaries with diagonal cost curvature.
fn miqp_instance(groups: usize, width: usize) -> MiqpProblem {
    let n = groups * width;
    let diag: Vec<f64> = (0..n)
        .map(|i| 0.5 + ((i * 37) % 11) as f64 / 10.0)
        .collect();
    let c: Vec<f64> = (0..n).map(|i| ((i * 13) % 7) as f64 / 10.0).collect();
    let mut p = MiqpProblem::new(Matrix::from_diag(&diag), c, vec![VarKind::Binary; n]);
    for g in 0..groups {
        let idx: Vec<usize> = (g * width..(g + 1) * width).collect();
        p.add_pick_one(&idx);
    }
    p
}

fn main() {
    let mut b = Bencher::new();

    for n in [10usize, 30, 60] {
        let lp = lp_instance(n);
        b.bench(&format!("lp_simplex/{n}"), 20, || lp.solve());
    }

    for n in [10usize, 40, 80] {
        let qp = qp_instance(n);
        b.bench(&format!("qp_active_set/{n}"), 20, || qp.solve());
        let mut ws = QpWorkspace::new();
        b.bench(&format!("qp_active_set_reused_ws/{n}"), 20, || {
            qp.solve_with(&mut ws)
        });
    }

    for (groups, width) in [(2usize, 8usize), (4, 8), (4, 12)] {
        let p = miqp_instance(groups, width);
        b.bench(&format!("miqp_bb/{groups}x{width}"), 10, || {
            solve_miqp(&p, BbOptions::default())
        });
        let mut ws = QpWorkspace::new();
        b.bench(&format!("miqp_bb_reused_ws/{groups}x{width}"), 10, || {
            solve_miqp_with(&p, BbOptions::default(), &mut ws)
        });
    }

    b.write_json_if_requested();
}
