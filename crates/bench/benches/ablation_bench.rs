//! Ablations over the design choices DESIGN.md calls out:
//!
//! * QCR μ policy: uniform eigenvalue shift vs dual-refined diagonal —
//!   B&B work on indefinite SOS-1 instances;
//! * candidate-boundary budget: optimizer time vs plan quality knob;
//! * intermediate store: S3 vs a Redis/Pocket-like fast store (paper §5.2
//!   "opportunity to further increase its performance");
//! * quota regime: 2020 (64 MB steps, 3008 MB cap) vs 2021 (1 MB steps,
//!   10,240 MB) — the paper's §5.1 future-work extension.

use ampsinf_bench::harness::Bencher;
use ampsinf_core::{AmpsConfig, Optimizer};
use ampsinf_linalg::Matrix;
use ampsinf_model::zoo;
use ampsinf_solver::bb::solve_miqp;
use ampsinf_solver::{BbOptions, ConvexifyMethod, MiqpProblem, VarKind};

/// Indefinite SOS-1 MIQP (off-diagonal coupling makes the QCR step earn
/// its keep).
fn indefinite_instance(groups: usize, width: usize, seed: u64) -> MiqpProblem {
    let n = groups * width;
    let mut h = Matrix::zeros(n, n);
    let mut s = seed;
    let mut rng = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 33) as f64) / (u32::MAX as f64) * 2.0 - 1.0
    };
    for r in 0..n {
        for c in (r + 1)..n {
            let v = (rng() * 2.0).round();
            h[(r, c)] = v;
            h[(c, r)] = v;
        }
    }
    let c: Vec<f64> = (0..n).map(|_| (rng() * 3.0).round()).collect();
    let mut p = MiqpProblem::new(h, c, vec![VarKind::Binary; n]);
    for g in 0..groups {
        let idx: Vec<usize> = (g * width..(g + 1) * width).collect();
        p.add_pick_one(&idx);
    }
    p
}

fn main() {
    let mut b = Bencher::new();

    for method in [ConvexifyMethod::EigenShift, ConvexifyMethod::DualRefine] {
        let p = indefinite_instance(3, 6, 99);
        b.bench(&format!("ablation_qcr/{method:?}"), 10, || {
            solve_miqp(
                &p,
                BbOptions {
                    convexify: method,
                    ..Default::default()
                },
            )
        });
    }

    let g = zoo::resnet50();
    for budget in [8usize, 16, 24] {
        let cfg = AmpsConfig {
            max_candidate_boundaries: budget,
            ..Default::default()
        };
        b.bench(&format!("ablation_candidate_budget/{budget}"), 10, || {
            Optimizer::new(cfg.clone()).optimize(&g).unwrap()
        });
    }

    let g = zoo::xception();
    for (name, store) in [
        ("s3", ampsinf_faas::StoreKind::s3()),
        ("fast", ampsinf_faas::StoreKind::fast_store()),
    ] {
        let cfg = AmpsConfig {
            store,
            ..Default::default()
        };
        b.bench(&format!("ablation_store/{name}"), 10, || {
            Optimizer::new(cfg.clone()).optimize(&g).unwrap()
        });
    }

    let g = zoo::resnet50();
    for (name, cfg) in [
        ("lambda2020", AmpsConfig::default()),
        ("lambda2021", AmpsConfig::default().lambda_2021()),
    ] {
        b.bench(&format!("ablation_quotas/{name}"), 10, || {
            Optimizer::new(cfg.clone()).optimize(&g).unwrap()
        });
    }

    b.write_json_if_requested();
}
