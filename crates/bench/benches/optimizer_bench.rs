//! End-to-end optimizer overhead per evaluation model — the paper's §5.4
//! "within a few seconds on a laptop" claim, as a tracked benchmark.

use ampsinf_core::{AmpsConfig, Optimizer};
use ampsinf_model::zoo;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_optimize(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize");
    group.sample_size(10);
    for g in [
        zoo::mobilenet_v1(),
        zoo::resnet50(),
        zoo::inception_v3(),
        zoo::xception(),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(&g.name), &g, |b, g| {
            b.iter(|| {
                black_box(
                    Optimizer::new(AmpsConfig::default())
                        .optimize(g)
                        .expect("feasible"),
                )
            })
        });
    }
    group.finish();
}

fn bench_optimize_with_slo(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize_slo");
    group.sample_size(10);
    let g = zoo::resnet50();
    // SLO near the feasibility edge forces the joint MIQP path.
    let free = Optimizer::new(AmpsConfig::default()).optimize(&g).unwrap();
    let slo = free.plan.predicted_time_s * 0.9;
    group.bench_function("resnet50_tight_slo", |b| {
        b.iter(|| {
            black_box(
                Optimizer::new(AmpsConfig::default().with_slo(slo))
                    .optimize(&g)
                    .expect("feasible"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_optimize, bench_optimize_with_slo);
criterion_main!(benches);
