//! End-to-end optimizer overhead — the paper's §5.4 "within a few seconds
//! on a laptop" claim, as a tracked benchmark.
//!
//! The thread sweep runs the large models (VGG16, quantized BERT-Base) at
//! 1, 2, and N (machine) worker threads; the deterministic merge means all
//! settings produce the identical plan, so the sweep isolates pure
//! pipeline speedup. Set `BENCH_OUT=BENCH_optimizer.json` to record the
//! baseline file.

use ampsinf_bench::harness::Bencher;
use ampsinf_core::{AmpsConfig, Optimizer, SweepGrid};
use ampsinf_model::zoo;

fn main() {
    let mut b = Bencher::new();

    for g in [
        zoo::mobilenet_v1(),
        zoo::resnet50(),
        zoo::inception_v3(),
        zoo::xception(),
    ] {
        b.bench(&format!("optimize/{}", g.name), 10, || {
            Optimizer::new(AmpsConfig::default().with_threads(1))
                .optimize(&g)
                .expect("feasible")
        });
    }

    // SLO near the feasibility edge forces the joint MIQP path.
    let g = zoo::resnet50();
    let free = Optimizer::new(AmpsConfig::default()).optimize(&g).unwrap();
    let slo = free.plan.predicted_time_s * 0.9;
    b.bench("optimize_slo/resnet50_tight", 10, || {
        Optimizer::new(AmpsConfig::default().with_slo(slo).with_threads(1))
            .optimize(&g)
            .expect("feasible")
    });

    // Thread sweep on the models with the largest cut spaces, quantized to
    // int8. Even at 1 byte/param VGG16's fc1 (~103 MB) exceeds the 2020
    // deployment weight budget (250 MB cap − 169 MB deps − 1 MB code), so
    // the VGG16 rows run under a lifted 512 MB package cap; BERT fits the
    // stock quotas. A tight SLO keeps pass 2 busy (MIQPs dominate);
    // without one, pass 1 dominates.
    let machine = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut sweep = vec![1usize, 2, machine];
    sweep.sort_unstable();
    sweep.dedup();
    let mut vgg_cfg = AmpsConfig::default();
    vgg_cfg.quotas.deploy_limit_mb = 512;
    for (g, base) in [
        (zoo::vgg16().quantized(1), vgg_cfg),
        (zoo::bert_base().quantized(1), AmpsConfig::default()),
    ] {
        let free = Optimizer::new(base.clone().with_threads(1))
            .optimize(&g)
            .expect("feasible");
        // Tightest feasible SLO from a descending ladder — a model whose
        // optimum is a single partition (quantized VGG16) has no headroom
        // below its free-run time, so 0.9x can be infeasible.
        let slo = [0.9, 0.95, 0.99, 1.05]
            .iter()
            .map(|f| free.plan.predicted_time_s * f)
            .find(|&s| {
                Optimizer::new(base.clone().with_slo(s).with_threads(1))
                    .optimize(&g)
                    .is_ok()
            })
            .expect("slack SLO is feasible");
        for &t in &sweep {
            b.bench(&format!("optimize/{}/threads={t}", g.name), 5, || {
                Optimizer::new(base.clone().with_threads(t))
                    .optimize(&g)
                    .expect("feasible")
            });
            b.bench(&format!("optimize_slo/{}/threads={t}", g.name), 5, || {
                Optimizer::new(base.clone().with_slo(slo).with_threads(t))
                    .optimize(&g)
                    .expect("feasible")
            });
        }
    }

    // Amortized grid planning vs N cold solves (ISSUE acceptance target:
    // the 16-point ResNet-50 sweep must beat 16 independent optimize()
    // calls by >= 3x). Both rows run at 1 thread so the ratio isolates
    // the pass-1 sharing + bound seeding, not parallelism.
    let g = zoo::resnet50();
    let free = Optimizer::new(AmpsConfig::default().with_threads(1))
        .optimize(&g)
        .expect("feasible");
    let t = free.plan.predicted_time_s;
    let grid = SweepGrid::slo_range(t * 0.9, t * 1.5, 16);
    b.bench("sweep/resnet50/16pt", 5, || {
        Optimizer::new(AmpsConfig::default().with_threads(1)).optimize_sweep(&g, &grid)
    });
    b.bench("sweep/resnet50/16pt_cold", 5, || {
        grid.slos
            .iter()
            .map(|&s| {
                Optimizer::new(AmpsConfig::default().with_slo(s).with_threads(1)).optimize(&g)
            })
            .collect::<Vec<_>>()
    });

    // Branch-parallel DAG planning (chain incumbent + fork/join candidate
    // evaluation + spine polish) on Inception-v3 at batch 64 under the
    // chain's own free-running latency as SLO — the ext-branches scenario,
    // where the DAG actually wins.
    let g = zoo::inception_v3();
    let base = AmpsConfig::default().with_batch(64);
    let free = Optimizer::new(base.clone().with_threads(1))
        .optimize(&g)
        .expect("feasible");
    let slo = free.plan.predicted_time_s;
    b.bench("optimize_dag/inception_v3/batch64", 5, || {
        Optimizer::new(base.clone().with_slo(slo).with_threads(1))
            .optimize_dag(&g)
            .expect("feasible")
    });

    // Amortized chain-vs-DAG grid: 16 SLO points against the same shared
    // pass-1 columns, region candidates and node/spine memos. At 1 thread
    // the row isolates memo sharing across points, not parallelism.
    let dag_grid = SweepGrid::slo_range(slo * 0.9, slo * 1.5, 16);
    b.bench("optimize_dag_sweep/inception_v3/16pt", 5, || {
        Optimizer::new(base.clone().with_threads(1)).optimize_dag_sweep(&g, &dag_grid)
    });

    // Bench targets run from the package directory; the committed baseline
    // lives at the repo root. Override with BENCH_BASELINE=<path>.
    b.compare_with_baseline("../../BENCH_optimizer.json");
    b.write_json_if_requested();
}
