//! §5.3–5.4 related-system comparisons: Fig. 11 (SerFer), Table 5
//! (10-image parallel batches vs SageMaker), Fig. 13 (BATCH).

use crate::Table;
use ampsinf_core::{AmpsConfig, Coordinator, Optimizer};
use ampsinf_model::zoo;
use ampsinf_serving::batch_baseline::run_batch_baseline;
use ampsinf_serving::batched::run_batched_plan;
use ampsinf_serving::sagemaker::{run_sagemaker, SageConfig, SageSetting};
use ampsinf_serving::serfer::run_serfer;

/// Fig. 11: ResNet50, SerFer vs AMPS-Inf (same partitions/config).
pub fn fig11() -> Table {
    let g = zoo::resnet50();
    let cfg = AmpsConfig::default();
    let plan = Optimizer::new(cfg.clone()).optimize(&g).unwrap().plan;
    let mut t = Table::new(
        "fig11",
        "ResNet50 one image: SerFer vs AMPS-Inf",
        &["time (s)", "cost ($)"],
    );
    let coord = Coordinator::new(cfg.clone());
    let mut platform = coord.platform();
    let dep = coord.deploy(&mut platform, &g, &plan).unwrap();
    let amps = coord.serve_one(&mut platform, &dep, 0.0, "amps").unwrap();
    let amps_dollars = amps.dollars + platform.settle_storage(amps.inference_s);
    t.row_all("AMPS-Inf", &[amps.inference_s, amps_dollars]);
    let serfer = run_serfer(&g, &plan, &cfg).unwrap();
    t.row_all("SerFer", &[serfer.completion_s, serfer.dollars]);
    t.notes = "Shape: SerFer pays ~15 s per Step-Function state transition plus the EC2 \
               driver, losing on both axes with identical partitions — the paper's Fig. 11."
        .into();
    t
}

/// Table 5: batch of 10 images served in parallel, vs SageMaker.
pub fn table5() -> Table {
    let cfg = AmpsConfig::default().with_batch(1);
    let mut t = Table::new(
        "table5",
        "Batch serving of 10 parallel images",
        &[
            "AMPS time",
            "Sage1 time",
            "Sage2 time",
            "AMPS cost",
            "Sage1 cost",
            "Sage2 cost",
        ],
    );
    for g in [zoo::resnet50(), zoo::inception_v3(), zoo::xception()] {
        let plan = Optimizer::new(cfg.clone()).optimize(&g).unwrap().plan;
        let coord = Coordinator::new(cfg.clone());
        let mut platform = coord.platform();
        let dep = coord.deploy(&mut platform, &g, &plan).unwrap();
        let batch = coord.serve_parallel(&mut platform, &dep, 10, 0.0);
        let amps_dollars = batch.dollars + platform.settle_storage(batch.completion_s);
        let s1 = run_sagemaker(
            &g,
            SageSetting::Sage1,
            10,
            &SageConfig::default(),
            &cfg.perf,
            &cfg.prices,
        );
        let s2 = run_sagemaker(
            &g,
            SageSetting::Sage2,
            10,
            &SageConfig::default(),
            &cfg.perf,
            &cfg.prices,
        );
        t.row_all(
            g.name.clone(),
            &[
                batch.completion_s,
                s1.completion_s,
                s2.completion_s,
                amps_dollars,
                s1.dollars,
                s2.dollars,
            ],
        );
    }
    t.notes = "Shape (paper Table 5): AMPS-Inf completes the 10-image batch ahead of Sage 1 \
               (parallel lambdas vs a single instance serving sequentially) at ≥53% lower \
               cost; Sage 2 remains dominated by endpoint deployment."
        .into();
    t
}

/// Fig. 13: MobileNet, 100 images in 10 batches — BATCH vs AMPS-Inf-Seq
/// vs AMPS-Inf (parallel).
pub fn fig13() -> Table {
    let g = zoo::mobilenet_v1();
    let cfg = AmpsConfig::default().with_batch(10);
    let plan = Optimizer::new(cfg.clone()).optimize(&g).unwrap().plan;
    let mut t = Table::new(
        "fig13",
        "MobileNet batch inference: 100 images as 10 batches of 10",
        &["time (s)", "cost ($)", "paper time", "paper cost"],
    );
    let batch = run_batch_baseline(&g, &cfg, 2048, 10, 10).unwrap();
    t.row_all(
        "BATCH",
        &[batch.completion_s, batch.dollars, 276.84, 0.0095],
    );
    let seq = run_batched_plan(&g, &plan, &cfg, 10, 10, false).unwrap();
    t.row_all(
        "AMPS-Inf-Seq",
        &[seq.completion_s, seq.dollars, 231.36, 0.0043],
    );
    let par = run_batched_plan(&g, &plan, &cfg, 10, 10, true).unwrap();
    t.row_all("AMPS-Inf", &[par.completion_s, par.dollars, 42.61, 0.0042]);
    t.notes = "Shape: AMPS-Inf-Seq beats BATCH on both axes under the same sequential \
               batching policy (warm chain vs lambda-per-batch); parallel invocation then \
               collapses completion time by ~7×, still cheaper than BATCH. Deviation: our \
               parallel mode pays cold scale-out (~40% over Seq) where the paper measured \
               near-equal cost."
        .into();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_serfer_loses_both_axes() {
        let t = fig11();
        let amps = &t.rows[0].1;
        let serfer = &t.rows[1].1;
        assert!(serfer[0].unwrap() > amps[0].unwrap() + 15.0);
        assert!(serfer[1].unwrap() > amps[1].unwrap());
    }

    #[test]
    fn table5_amps_wins() {
        let t = table5();
        for (label, v) in &t.rows {
            let amps_t = v[0].unwrap();
            let s1_t = v[1].unwrap();
            let amps_c = v[3].unwrap();
            let s1_c = v[4].unwrap();
            let s2_c = v[5].unwrap();
            assert!(amps_t < s1_t, "{label}: time {amps_t} vs {s1_t}");
            assert!(amps_c < s1_c * 0.47, "{label}: cost {amps_c} vs {s1_c}");
            assert!(s2_c > s1_c, "{label}: sage2 priciest");
        }
    }

    #[test]
    fn fig13_ordering() {
        let t = fig13();
        let batch = &t.rows[0].1;
        let seq = &t.rows[1].1;
        let par = &t.rows[2].1;
        assert!(
            seq[1].unwrap() < batch[1].unwrap(),
            "seq cheaper than BATCH"
        );
        assert!(seq[0].unwrap() < batch[0].unwrap(), "seq faster than BATCH");
        assert!(
            par[0].unwrap() < seq[0].unwrap() * 0.5,
            "parallel much faster"
        );
    }
}
