//! Extension experiments beyond the paper's figures — the future-work
//! items §5.1/§5.4/§7 sketch, measured:
//!
//! * `ext-store`     — S3 vs a Redis/Pocket-class fast store (§5.2's
//!   "there is opportunity to further increase its performance");
//! * `ext-quota`     — the 2020 vs post-2020 Lambda quota regimes (§5.1);
//! * `ext-quantize`  — weight quantization unlocking BERT-class models (§7);
//! * `ext-pipeline`  — sequential vs pipelined vs parallel batch execution;
//! * `ext-parallel`  — Gillis-style weight slicing serving VGG16 (§6);
//! * `ext-costmodel` — itemized Eq. (3) cost terms per model;
//! * `ext-load`      — open-loop load dynamics over an optimized chain
//!   (§2's elasticity motivation).

use crate::Table;
use ampsinf_core::{AmpsConfig, Coordinator, Optimizer};
use ampsinf_model::zoo;
use ampsinf_serving::loadgen::{run_open_loop, LoadSpec};

/// S3 vs fast intermediate store, measured end to end on Xception.
pub fn ext_store() -> Table {
    let mut t = Table::new(
        "ext-store",
        "Intermediate store: S3 vs fast store (Xception, one image)",
        &["time (s)", "cost ($)", "lambdas"],
    );
    for (label, store) in [
        ("S3", ampsinf_faas::StoreKind::s3()),
        ("fast store", ampsinf_faas::StoreKind::fast_store()),
    ] {
        let cfg = AmpsConfig {
            store,
            ..Default::default()
        };
        let g = zoo::xception();
        let plan = Optimizer::new(cfg.clone()).optimize(&g).unwrap().plan;
        let coord = Coordinator::new(cfg);
        let mut platform = coord.platform();
        let dep = coord.deploy(&mut platform, &g, &plan).unwrap();
        let job = coord.serve_one(&mut platform, &dep, 0.0, "st").unwrap();
        let dollars = job.dollars + platform.settle_storage(job.inference_s);
        t.row_all(
            label,
            &[job.inference_s, dollars, plan.num_lambdas() as f64],
        );
    }
    t.notes = "Shape: the fast store trims the transfer component (and its request fees), \
               confirming the §5.2 headroom; the partitioning itself may also shift, since \
               cheaper boundaries tolerate more lambdas."
        .into();
    t
}

/// Plans under the 2020 vs 2021 quota presets.
pub fn ext_quota() -> Table {
    let mut t = Table::new(
        "ext-quota",
        "Quota regimes: 2020 (64 MB steps, ≤3008) vs 2021 (1 MB, ≤10240)",
        &["2020 time", "2020 cost", "2021 time", "2021 cost"],
    );
    for g in [zoo::resnet50(), zoo::inception_v3(), zoo::xception()] {
        let cfg20 = AmpsConfig {
            cost_tolerance: 0.0,
            ..Default::default()
        };
        let cfg21 = AmpsConfig {
            cost_tolerance: 0.0,
            ..AmpsConfig::default().lambda_2021()
        };
        let p20 = Optimizer::new(cfg20).optimize(&g).unwrap().plan;
        let p21 = Optimizer::new(cfg21).optimize(&g).unwrap().plan;
        t.row_all(
            g.name.clone(),
            &[
                p20.predicted_time_s,
                p20.predicted_cost,
                p21.predicted_time_s,
                p21.predicted_cost,
            ],
        );
    }
    t.notes = "Shape: the finer/wider 2021 grid never costs more at the optimum (it is a \
               superset up to grid thinning) — the extension the paper's §5.1 leaves open."
        .into();
    t
}

/// Quantization feasibility ladder on BERT-base.
pub fn ext_quantize() -> Table {
    let mut t = Table::new(
        "ext-quantize",
        "Weight quantization on BERT-base (≈418 MB at float32)",
        &["weights (MB)", "lambdas", "time (s)", "cost ($)"],
    );
    let g32 = zoo::bert_base();
    for (label, g) in [
        ("float32", g32.clone()),
        ("fp16", g32.quantized(2)),
        ("int8", g32.quantized(1)),
    ] {
        let mb = g.weight_bytes() as f64 / 1024.0 / 1024.0;
        match Optimizer::new(AmpsConfig::default()).optimize(&g) {
            Ok(r) => t.row_all(
                label,
                &[
                    mb,
                    r.plan.num_lambdas() as f64,
                    r.plan.predicted_time_s,
                    r.plan.predicted_cost,
                ],
            ),
            Err(_) => t.row(label.to_string(), vec![Some(mb), None, None, None]),
        }
    }
    t.notes = "Shape: narrower weights need fewer partitions and load faster; whether \
               float32 is plannable at all depends on the embedding-table slice fitting \
               beside the 169 MB dependency layer — exactly the §7 failure mode \
               quantization exists to fix."
        .into();
    t
}

/// Best chain vs best branch-parallel DAG on Inception-v3 at equal SLO
/// (the chain's own batch-64 free-running latency). At batch 64 the
/// chain's resident footprint forces it past the CPU-saturation memory
/// point, where premium GB-seconds buy no more speed; the DAG takes its
/// latency from branch concurrency at right-sized nodes instead, and
/// must win on critical path at no more than the chain's cost with
/// every scatter/gather request fee and storage lifetime billed.
pub fn ext_branches() -> Table {
    let mut t = Table::new(
        "ext-branches",
        "Branch-parallel DAG vs best chain on Inception-v3 (batch 64, equal SLO)",
        &["time (s)", "cost ($)", "nodes", "width", "objects"],
    );
    let g = zoo::inception_v3();
    let base = AmpsConfig {
        batch_size: 64,
        ..Default::default()
    };
    let free = Optimizer::new(base.clone()).optimize(&g).unwrap();
    let slo = free.plan.predicted_time_s;
    let report = Optimizer::new(AmpsConfig {
        slo_s: Some(slo),
        ..base
    })
    .optimize_dag(&g)
    .unwrap();
    let chain = &report.chain.plan;
    t.row_all(
        format!("best chain (slo={slo:.1}s)"),
        &[
            chain.predicted_time_s,
            chain.predicted_cost,
            chain.num_lambdas() as f64,
            1.0,
            (chain.num_lambdas() - 1) as f64,
        ],
    );
    match &report.dag {
        Some(dag) => t.row_all(
            "best DAG",
            &[
                dag.predicted_time_s,
                dag.predicted_cost,
                dag.nodes.len() as f64,
                dag.width() as f64,
                dag.objects.len() as f64,
            ],
        ),
        None => t.row("best DAG".to_string(), vec![None; 5]),
    }
    t.notes = format!(
        "Shape: at the shared SLO ({} of {} fork/join regions parallelized) the DAG beats \
         the chain on critical-path latency at no more cost — its fan-out buys k sandboxes \
         but only max(branch) wall-clock, while the chain pays above-saturation memory for \
         the whole batch. Scatter (1 put, k gets) and gather (k puts, 1 get) checkpoint \
         objects are billed per object, fees and at-rest lifetimes included.",
        report.regions_used, report.regions_considered
    );
    t
}

/// Batch-mode ladder: sequential vs pipelined vs parallel (ResNet50 — its
/// plans always span several partitions, so pipeline overlap is real;
/// batch-aware plan, 10 batches of 10 images).
pub fn ext_pipeline() -> Table {
    use ampsinf_serving::batched::{run_batched_plan, run_pipelined_batches};
    let g = zoo::resnet50();
    let cfg = AmpsConfig::default().with_batch(10);
    let plan = Optimizer::new(cfg.clone()).optimize(&g).unwrap().plan;
    let mut t = Table::new(
        "ext-pipeline",
        "Batch execution modes over the same plan (100 images, 10 batches)",
        &["time (s)", "cost ($)"],
    );
    let seq = run_batched_plan(&g, &plan, &cfg, 10, 10, false).unwrap();
    t.row_all("sequential", &[seq.completion_s, seq.dollars]);
    let pipe = run_pipelined_batches(&g, &plan, &cfg, 10, 10).unwrap();
    t.row_all("pipelined", &[pipe.completion_s, pipe.dollars]);
    let par = run_batched_plan(&g, &plan, &cfg, 10, 10, true).unwrap();
    t.row_all("parallel", &[par.completion_s, par.dollars]);
    t.notes = "Shape: pipelining overlaps batches across partition stages (steady-state \
               throughput = slowest stage) at sequential-mode cost; full parallelism is \
               fastest but pays a cold chain per batch. An execution-mode ladder beyond \
               the paper's Fig. 13 pair."
        .into();
    t
}

/// Stage-station pipelining (DESIGN.md §6e): the same closed batch through
/// the sequential chain engine vs the pipelined station engine, on the
/// cost-blind balanced bucket-scan plan and the budget-bound joint plan.
pub fn ext_stations() -> Table {
    use ampsinf_core::baselines;
    use ampsinf_core::sweep::SweepGrid;
    let g = zoo::resnet50();
    let cfg = AmpsConfig::default();
    let n = 40;
    let balanced = baselines::b4_bucket_scan(&g, &cfg, 4).expect("bucket scan plans resnet50");
    let grid = SweepGrid::from_slos(vec![1e9]).with_batches(vec![1]);
    let mut rep = Optimizer::new(cfg.clone()).optimize_pipelined(&g, &grid);
    let joint = rep
        .points
        .remove(0)
        .outcome
        .expect("joint plan feasible unconstrained")
        .plan;
    let mut t = Table::new(
        "ext-stations",
        "Sequential vs pipelined stage stations (ResNet50, 40 requests)",
        &["time (s)", "cost ($)", "req/s", "util (%)", "stall (s)"],
    );
    for (label, plan, depth) in [
        ("sequential, bucket-scan 4-stage", &balanced, 0usize),
        ("pipelined d=1, bucket-scan 4-stage", &balanced, 1),
        ("pipelined d=2, bucket-scan 4-stage", &balanced, 2),
        ("pipelined d=1, joint cost-bound plan", &joint, 1),
    ] {
        if depth == 0 {
            let coord = Coordinator::new(cfg.clone());
            let mut platform = coord.platform();
            let dep = coord.deploy(&mut platform, &g, plan).unwrap();
            let r = coord.serve_sequential(&mut platform, &dep, n, 0.0);
            t.row(
                label,
                vec![
                    Some(r.completion_s),
                    Some(r.dollars),
                    Some(n as f64 / r.completion_s),
                    None,
                    None,
                ],
            );
        } else {
            let coord = Coordinator::new(cfg.clone().with_pipeline(depth));
            let mut platform = coord.platform();
            let dep = coord.deploy(&mut platform, &g, plan).unwrap();
            let r = coord.serve_pipelined(&mut platform, &dep, n, 0.0);
            t.row(
                label,
                vec![
                    Some(r.completion_s),
                    Some(r.dollars),
                    Some(n as f64 / r.completion_s),
                    Some(100.0 * r.stats.utilization()),
                    Some(r.stats.stall_s()),
                ],
            );
        }
    }
    t.notes = "Shape: over the same balanced plan, stations only help — depth 1 already \
               overlaps stage i of request k+1 with stage i+1 of request k at identical \
               dollars (steady-state moves from the chain-sum bound toward the bottleneck \
               bound, ≥2x here), and depth 2 buys further overlap at the cost of more warm \
               stations; the joint planner's plan balances only as far as the cost budget \
               allows, so its stall is higher than the cost-blind bucket scan's."
        .into();
    t
}

/// Gillis-style weight parallelism (paper §6's contrasted approach) on the
/// §1 motivating model: VGG16's fc1 layer alone busts the deployment cap,
/// so chain partitioning is infeasible — weight slicing serves it.
pub fn ext_parallel() -> Table {
    use ampsinf_serving::layer_parallel::{plan_with_parallelism, run_parallel_plan};
    let g = zoo::vgg16();
    let cfg = AmpsConfig::default();
    let mut t = Table::new(
        "ext-parallel",
        "VGG16 (fc1 = 392 MB): chain partitioning vs weight-sliced stages",
        &["feasible", "lambdas", "time (s)", "cost ($)"],
    );
    match Optimizer::new(cfg.clone()).optimize(&g) {
        Ok(_) => t.row_all("AMPS chain", &[1.0, 0.0, 0.0, 0.0]),
        Err(_) => t.row("AMPS chain", vec![Some(0.0), None, None, None]),
    }
    match plan_with_parallelism(&g, &cfg, 16) {
        Some(plan) => {
            let run = run_parallel_plan(&g, &plan, &cfg).expect("plan executes");
            t.row_all(
                format!("weight-sliced (≤{} workers/stage)", plan.max_workers()),
                &[
                    1.0,
                    plan.total_workers() as f64,
                    run.inference_s,
                    run.dollars,
                ],
            );
        }
        None => t.row("weight-sliced", vec![Some(0.0), None, None, None]),
    }
    t.notes = "Shape: contiguous chains (the paper's design) cannot place VGG16's fc1 next \
               to the 169 MB dependency layer at all; slicing that one layer across \
               workers (Gillis's approach, §6) restores feasibility at the price of \
               broadcast/gather transfers — the design tension between the two systems."
        .into();
    t
}

/// Itemized cost decomposition (the paper's Eq. 3 terms, measured):
/// compute `v·T`, invocation `I`, requests `G`/`U`, at-rest storage `H`.
pub fn ext_costmodel() -> Table {
    use ampsinf_faas::CostItem;
    let mut t = Table::new(
        "ext-costmodel",
        "Where the dollars go: Eq. (3) cost terms per model (one image)",
        &[
            "compute",
            "invocations",
            "S3 PUT",
            "S3 GET",
            "S3 at-rest",
            "total",
        ],
    );
    let cfg = AmpsConfig::default();
    for g in [zoo::resnet50(), zoo::inception_v3(), zoo::xception()] {
        let plan = Optimizer::new(cfg.clone()).optimize(&g).unwrap().plan;
        let coord = Coordinator::new(cfg.clone());
        let mut platform = coord.platform();
        let dep = coord.deploy(&mut platform, &g, &plan).unwrap();
        let job = coord.serve_one(&mut platform, &dep, 0.0, "cm").unwrap();
        platform.settle_storage(job.inference_s);
        let l = &platform.ledger;
        t.row_all(
            g.name.clone(),
            &[
                l.total_of(CostItem::LambdaCompute),
                l.total_of(CostItem::LambdaRequest),
                l.total_of(CostItem::StoragePut),
                l.total_of(CostItem::StorageGet),
                l.total_of(CostItem::StorageAtRest),
                l.total(),
            ],
        );
    }
    t.notes = "Shape: compute GB-seconds dominate (the paper's `v·T` term); request fees \
               and at-rest storage are cents-of-a-cent — which is why the optimizer's \
               action is almost entirely in the (partition, memory) choice."
        .into();
    t
}

/// Open-loop load sweep on MobileNet.
pub fn ext_load() -> Table {
    let g = zoo::mobilenet_v1();
    let cfg = AmpsConfig::default();
    let plan = Optimizer::new(cfg.clone()).optimize(&g).unwrap().plan;
    let mut t = Table::new(
        "ext-load",
        "Open-loop Poisson load over the MobileNet plan (20 requests)",
        &["p50 (s)", "p95 (s)", "cold starts", "$/request"],
    );
    for rate in [0.02, 0.2, 2.0, 50.0] {
        let r = run_open_loop(&g, &plan, &cfg, &LoadSpec::poisson(rate, 20, 17)).unwrap();
        t.row_all(
            format!("{rate} rps"),
            &[
                r.percentile(50.0),
                r.percentile(95.0),
                r.cold_starts as f64,
                r.dollars / 20.0,
            ],
        );
    }
    t.notes = "Shape: trickle rates serve warm (low p50, cold starts ≈ partition count); \
               bursts scale out cold (p50 rises toward the cold-chain latency) while cost \
               per request stays nearly flat — serverless elasticity, priced."
        .into();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_ablation_fast_is_faster() {
        let t = ext_store();
        let s3 = &t.rows[0].1;
        let fast = &t.rows[1].1;
        assert!(fast[0].unwrap() <= s3[0].unwrap() + 1e-9);
    }

    #[test]
    fn quota_2021_no_worse() {
        let t = ext_quota();
        for (label, v) in &t.rows {
            assert!(
                v[3].unwrap() <= v[1].unwrap() * 1.001,
                "{label}: 2021 cost must not exceed 2020"
            );
        }
    }

    #[test]
    fn quantize_ladder_monotone() {
        let t = ext_quantize();
        // Weight MBs halve down the ladder.
        let w32 = t.rows[0].1[0].unwrap();
        let w16 = t.rows[1].1[0].unwrap();
        let w8 = t.rows[2].1[0].unwrap();
        assert!((w32 / w16 - 2.0).abs() < 0.01);
        assert!((w16 / w8 - 2.0).abs() < 0.01);
        // fp16 and int8 must be plannable.
        assert!(t.rows[1].1[1].is_some());
        assert!(t.rows[2].1[1].is_some());
        // Narrower weights never need more lambdas.
        if let (Some(l16), Some(l8)) = (t.rows[1].1[1], t.rows[2].1[1]) {
            assert!(l8 <= l16);
        }
    }

    #[test]
    fn parallel_extension_serves_vgg16() {
        let t = ext_parallel();
        // Chain infeasible, sliced feasible.
        assert_eq!(t.rows[0].1[0], Some(0.0), "chain must be infeasible");
        assert_eq!(t.rows[1].1[0], Some(1.0), "sliced must be feasible");
        assert!(t.rows[1].1[2].unwrap() > 0.0);
    }

    #[test]
    fn branches_dag_beats_chain_at_equal_slo() {
        // The ISSUE 8 acceptance pin: on Inception-v3 at batch 64 under
        // the chain's own free-running latency as SLO, the DAG wins on
        // critical path at no more than the chain's cost.
        let t = ext_branches();
        let chain = &t.rows[0].1;
        let dag = &t.rows[1].1;
        assert!(dag[0].is_some(), "a DAG plan must win at batch 64");
        assert!(
            dag[0].unwrap() < chain[0].unwrap() - 1e-9,
            "DAG critical path must beat the chain"
        );
        assert!(
            dag[1].unwrap() <= chain[1].unwrap() + 1e-12,
            "DAG must not cost more than the chain"
        );
        assert!(dag[3].unwrap() >= 2.0, "the plan must actually fan out");
    }

    #[test]
    fn pipeline_mode_between_sequential_and_parallel() {
        let t = ext_pipeline();
        let seq = t.rows[0].1[0].unwrap();
        let pipe = t.rows[1].1[0].unwrap();
        let par = t.rows[2].1[0].unwrap();
        assert!(pipe <= seq + 1e-9, "pipeline no slower than sequential");
        assert!(par <= pipe + 1e-9, "parallel no slower than pipeline");
    }

    #[test]
    fn stations_double_throughput_at_equal_dollars() {
        let t = ext_stations();
        let seq = &t.rows[0].1;
        let d1 = &t.rows[1].1;
        let d2 = &t.rows[2].1;
        // Same plan, same dollars, >=2x throughput at depth 1.
        assert!((d1[1].unwrap() - seq[1].unwrap()).abs() < 1e-9);
        assert!(d1[2].unwrap() >= 2.0 * seq[2].unwrap());
        // Depth 2 is no slower than depth 1; utilization/stall reported.
        assert!(d2[0].unwrap() <= d1[0].unwrap() + 1e-9);
        for r in [d1, d2] {
            assert!(r[3].unwrap() > 0.0 && r[3].unwrap() <= 100.0);
            assert!(r[4].unwrap() >= 0.0);
        }
    }

    #[test]
    fn load_sweep_shapes() {
        let t = ext_load();
        let trickle = &t.rows[0].1;
        let burst = &t.rows[3].1;
        assert!(
            trickle[0].unwrap() < burst[0].unwrap(),
            "warm p50 < burst p50"
        );
        assert!(
            trickle[2].unwrap() < burst[2].unwrap(),
            "fewer cold starts at trickle"
        );
    }
}
