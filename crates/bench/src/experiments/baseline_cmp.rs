//! §5.3 baseline comparison: Fig. 9 (completion times) and Fig. 10 (cost)
//! for AMPS-Inf vs Baselines 1–3 on the three large models.

use crate::Table;
use ampsinf_core::baselines::{b1_random, b2_greedy_max, b3_optimal};
use ampsinf_core::plan::ExecutionPlan;
use ampsinf_core::{AmpsConfig, Coordinator, Optimizer};
use ampsinf_model::zoo;
use ampsinf_model::LayerGraph;

/// Seed for Baseline 1's randomness (fixed for reproducibility).
const B1_SEED: u64 = 2020;

/// Measured (completion seconds, dollars incl. storage settlement) of a
/// plan served once on a fresh platform.
fn measure(g: &LayerGraph, plan: &ExecutionPlan, cfg: &AmpsConfig) -> (f64, f64) {
    let coord = Coordinator::new(cfg.clone());
    let mut platform = coord.platform();
    let dep = coord
        .deploy(&mut platform, g, plan)
        .expect("deployable plan");
    let job = coord
        .serve_one(&mut platform, &dep, 0.0, "bl")
        .expect("serves");
    let dollars = job.dollars + platform.settle_storage(job.inference_s);
    (job.inference_s, dollars)
}

/// One model's (time, cost) for AMPS and the three baselines.
type ModelRuns = (String, [(f64, f64); 4]);

/// All four systems' (time, cost) per model; computed once — Fig. 9 and
/// Fig. 10 read the same runs, as in the paper.
fn run_all() -> &'static Vec<ModelRuns> {
    static CACHE: std::sync::OnceLock<Vec<ModelRuns>> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| {
        let cfg = AmpsConfig::default();
        let mut out = Vec::new();
        for g in [zoo::resnet50(), zoo::inception_v3(), zoo::xception()] {
            let amps = Optimizer::new(cfg.clone()).optimize(&g).unwrap().plan;
            let b1 = b1_random(&g, &cfg, B1_SEED).expect("b1 feasible");
            let b2 = b2_greedy_max(&g, &cfg).expect("b2 feasible");
            let b3 = b3_optimal(&g, &cfg).expect("b3 feasible");
            out.push((
                g.name.clone(),
                [
                    measure(&g, &amps, &cfg),
                    measure(&g, &b1, &cfg),
                    measure(&g, &b2, &cfg),
                    measure(&g, &b3, &cfg),
                ],
            ));
        }
        out
    })
}

/// Fig. 9: completion times across the four lambda settings.
pub fn fig9() -> Table {
    let mut t = Table::new(
        "fig9",
        "Completion time for one image across lambda settings (s)",
        &["AMPS-Inf", "Baseline 1", "Baseline 2", "Baseline 3"],
    );
    for (name, vals) in run_all().iter() {
        t.row_all(name.clone(), &[vals[0].0, vals[1].0, vals[2].0, vals[3].0]);
    }
    t.notes = "Shape: AMPS-Inf beats B1 and the cost-optimal B3 on completion (paper: \
               ≈4% faster than B3 on ResNet50, ≈9% on Xception) by spending its cost \
               tolerance on larger blocks. Deviation: our B2 (maximum memory everywhere) \
               is the fastest setting at 3–6× the cost — in the paper's measurements B2 \
               came out slightly slower than B1, which our deterministic CPU-share model \
               cannot reproduce (more memory never hurts)."
        .into();
    t
}

/// Fig. 10: total costs across the four lambda settings.
pub fn fig10() -> Table {
    let mut t = Table::new(
        "fig10",
        "Total cost for one image across lambda settings ($)",
        &["AMPS-Inf", "Baseline 1", "Baseline 2", "Baseline 3"],
    );
    for (name, vals) in run_all().iter() {
        t.row_all(name.clone(), &[vals[0].1, vals[1].1, vals[2].1, vals[3].1]);
    }
    t.notes = "Shape: B3 (exhaustive optimum) is the cheapest; AMPS-Inf sits within its \
               cost tolerance of B3 (paper: +9% ResNet50, ≈0% InceptionV3, +14% \
               Xception); B2's max-memory allocation is the most expensive lambda \
               setting (paper: B2 > B1 > AMPS ≥ B3)."
        .into();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_fig10_shapes() {
        let data = run_all();
        for (name, v) in data.iter() {
            let (amps, b1, b2, b3) = (v[0], v[1], v[2], v[3]);
            // Cost ordering: B3 cheapest; AMPS within ~25% of B3; B2 most
            // expensive of the heuristics.
            assert!(b3.1 <= amps.1 + 1e-12, "{name}: b3 not cheapest");
            assert!(
                amps.1 <= b3.1 * 1.25,
                "{name}: amps {} vs b3 {}",
                amps.1,
                b3.1
            );
            assert!(
                amps.1 <= b1.1 && amps.1 <= b2.1,
                "{name}: amps must beat heuristics on cost"
            );
            assert!(
                b2.1 > b3.1 * 1.5,
                "{name}: max-memory B2 should be clearly pricier"
            );
            // Time: AMPS no slower than B3 + dust, and faster than B1.
            assert!(
                amps.0 <= b3.0 * 1.02 + 1e-9,
                "{name}: amps {} vs b3 {}",
                amps.0,
                b3.0
            );
        }
    }
}
