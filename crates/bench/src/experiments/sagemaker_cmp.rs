//! §5.2 SageMaker comparison: Fig. 5 (loading), Fig. 6 (prediction),
//! Table 4 (Sage 2 totals), Fig. 7 (completion), Fig. 8 (cost), and the
//! small-model Fig. 12.

use crate::Table;
use ampsinf_core::{AmpsConfig, Coordinator, JobReport, Optimizer};
use ampsinf_model::zoo;
use ampsinf_model::LayerGraph;
use ampsinf_serving::sagemaker::{run_sagemaker, SageConfig, SageReport, SageSetting};

/// The three large evaluation models, in paper order.
fn eval_models() -> Vec<LayerGraph> {
    vec![zoo::resnet50(), zoo::inception_v3(), zoo::xception()]
}

/// Optimizes + serves one image on AMPS-Inf; returns the job report and
/// total dollars (with storage settlement).
pub fn amps_serve(g: &LayerGraph, cfg: &AmpsConfig) -> (JobReport, f64) {
    let plan = Optimizer::new(cfg.clone())
        .optimize(g)
        .expect("evaluation models are partitionable")
        .plan;
    let coord = Coordinator::new(cfg.clone());
    let mut platform = coord.platform();
    let dep = coord.deploy(&mut platform, g, &plan).unwrap();
    let job = coord.serve_one(&mut platform, &dep, 0.0, "eval").unwrap();
    let dollars = job.dollars + platform.settle_storage(job.inference_s);
    (job, dollars)
}

/// AMPS-Inf runs for the three large models, computed once and shared by
/// Figs. 5–8 (the paper measures one deployment per model too).
fn amps_results() -> &'static Vec<(String, JobReport, f64)> {
    static CACHE: std::sync::OnceLock<Vec<(String, JobReport, f64)>> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| {
        let cfg = AmpsConfig::default();
        eval_models()
            .into_iter()
            .map(|g| {
                let (job, dollars) = amps_serve(&g, &cfg);
                (g.name.clone(), job, dollars)
            })
            .collect()
    })
}

fn sage(g: &LayerGraph, setting: SageSetting, cfg: &AmpsConfig) -> SageReport {
    run_sagemaker(
        g,
        setting,
        1,
        &SageConfig::default(),
        &cfg.perf,
        &cfg.prices,
    )
}

/// Fig. 5: time to load model and weights.
pub fn fig5() -> Table {
    let cfg = AmpsConfig::default();
    let mut t = Table::new(
        "fig5",
        "Model+weights loading time (s)",
        &["AMPS-Inf", "Sage 1", "Sage 2"],
    );
    for (g, (_, job, _)) in eval_models().iter().zip(amps_results()) {
        let s1 = sage(g, SageSetting::Sage1, &cfg);
        let s2 = sage(g, SageSetting::Sage2, &cfg);
        t.row_all(g.name.clone(), &[job.load_s, s1.load_s, s2.load_s]);
    }
    t.notes = "Shape: AMPS-Inf's summed per-partition loading is the minimum of the three \
               settings, the paper's headline Fig. 5 fact. Deviation: we fold the model \
               re-arrangement (JSON/h5 → model.pb) into Sage 1's loading path, which makes \
               our Sage 1 slower than Sage 2's network pull — the paper orders those two \
               the other way."
        .into();
    t
}

/// Fig. 6: prediction time, AMPS-Inf vs Sage 1.
pub fn fig6() -> Table {
    let cfg = AmpsConfig::default();
    let mut t = Table::new(
        "fig6",
        "Prediction time (one image, s)",
        &["AMPS-Inf", "Sage 1"],
    );
    for (g, (_, job, _)) in eval_models().iter().zip(amps_results()) {
        let s1 = sage(g, SageSetting::Sage1, &cfg);
        t.row_all(g.name.clone(), &[job.predict_s, s1.predict_s]);
    }
    t.notes = "Shape: AMPS-Inf's summed lambda compute beats the t2.medium notebook \
               (larger memory blocks buy more CPU share than the burstable instance \
               sustains) — Fig. 6's ordering."
        .into();
    t
}

/// Table 4: Sage 2 deployment + prediction totals.
pub fn table4() -> Table {
    let cfg = AmpsConfig::default();
    let mut t = Table::new(
        "table4",
        "Sage 2 overall deployment + prediction time (one image)",
        &["time (s)", "paper time"],
    );
    let paper = [463.482, 462.303, 401.787];
    for (g, p) in eval_models().into_iter().zip(paper) {
        let s2 = sage(&g, SageSetting::Sage2, &cfg);
        t.row_all(g.name.clone(), &[s2.completion_s, p]);
    }
    t.notes = "Shape: all three land in the 400–480 s band; endpoint creation and \
               hosting-instance launch dominate, exactly the paper's attribution."
        .into();
    t
}

/// Fig. 7: end-to-end completion times.
pub fn fig7() -> Table {
    let cfg = AmpsConfig::default();
    let mut t = Table::new(
        "fig7",
        "Completion time for one image (s)",
        &["AMPS-Inf", "Sage 1", "Sage 2"],
    );
    for (g, (_, job, _)) in eval_models().iter().zip(amps_results()) {
        let s1 = sage(g, SageSetting::Sage1, &cfg);
        let s2 = sage(g, SageSetting::Sage2, &cfg);
        t.row_all(
            g.name.clone(),
            &[job.e2e_s, s1.completion_s, s2.completion_s],
        );
    }
    t.notes = "Shape: AMPS-Inf completes ahead of Sage 1 for every model (paper: ≥47%/17%/61% \
               for ResNet50/InceptionV3/Xception) and Sage 2 is an order of magnitude slower."
        .into();
    t
}

/// Fig. 8: total costs.
pub fn fig8() -> Table {
    let cfg = AmpsConfig::default();
    let mut t = Table::new(
        "fig8",
        "Total cost for one image ($)",
        &["AMPS-Inf", "Sage 1", "Sage 2"],
    );
    for (g, (_, _, dollars)) in eval_models().iter().zip(amps_results()) {
        let s1 = sage(g, SageSetting::Sage1, &cfg);
        let s2 = sage(g, SageSetting::Sage2, &cfg);
        t.row_all(g.name.clone(), &[*dollars, s1.dollars, s2.dollars]);
    }
    t.notes = "Shape: AMPS-Inf cuts ≥92% of Sage 1's cost and ≥98% of Sage 2's (paper: \
               92.85–98.67% and 98.02–99.33%)."
        .into();
    t
}

/// Fig. 12: the small-model (MobileNet) comparison.
pub fn fig12() -> Table {
    let cfg = AmpsConfig::default();
    let g = zoo::mobilenet_v1();
    let mut t = Table::new(
        "fig12",
        "MobileNet one image: completion time and cost",
        &["time (s)", "cost ($)"],
    );
    let (job, dollars) = amps_serve(&g, &cfg);
    t.row_all("AMPS-Inf", &[job.e2e_s, dollars]);
    let s1 = sage(&g, SageSetting::Sage1, &cfg);
    t.row_all("Sage 1", &[s1.completion_s, s1.dollars]);
    let s2 = sage(&g, SageSetting::Sage2, &cfg);
    t.row_all("Sage 2", &[s2.completion_s, s2.dollars]);
    t.notes = "Shape: even for a model that fits one lambda, AMPS-Inf (paper: two lambdas \
               at 1024/960 MB, $0.00019) beats both SageMaker settings on time and cuts \
               ~98% of their cost — the paper's §5.4 small-model result."
        .into();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_amps_beats_sage1_everywhere() {
        let t = fig7();
        for (label, v) in &t.rows {
            let (amps, s1, s2) = (v[0].unwrap(), v[1].unwrap(), v[2].unwrap());
            assert!(amps < s1, "{label}: amps {amps} vs sage1 {s1}");
            assert!(s2 > 5.0 * s1, "{label}: sage2 must dwarf sage1");
        }
    }

    #[test]
    fn fig8_cost_reductions_match_paper_band() {
        let t = fig8();
        for (label, v) in &t.rows {
            let (amps, s1, s2) = (v[0].unwrap(), v[1].unwrap(), v[2].unwrap());
            let red1 = 1.0 - amps / s1;
            let red2 = 1.0 - amps / s2;
            assert!(red1 > 0.90, "{label}: vs Sage1 only {red1:.3}");
            assert!(red2 > 0.95, "{label}: vs Sage2 only {red2:.3}");
        }
    }

    #[test]
    fn fig5_loading_order() {
        // Paper Fig. 5: AMPS-Inf's summed loading is the minimum; Sage 2's
        // network pull makes it the slowest of the two SageMaker settings.
        let t = fig5();
        for (label, v) in &t.rows {
            let (amps, s1, s2) = (v[0].unwrap(), v[1].unwrap(), v[2].unwrap());
            assert!(amps < s1, "{label}: AMPS loading must beat Sage 1");
            assert!(amps < s2, "{label}: AMPS loading must beat Sage 2");
        }
    }

    #[test]
    fn fig6_prediction_order() {
        let t = fig6();
        for (label, v) in &t.rows {
            assert!(
                v[0].unwrap() < v[1].unwrap(),
                "{label}: AMPS prediction must beat Sage 1"
            );
        }
    }

    #[test]
    fn table4_band() {
        let t = table4();
        for (label, v) in &t.rows {
            let s = v[0].unwrap();
            assert!(s > 380.0 && s < 520.0, "{label}: {s}");
        }
    }

    #[test]
    fn fig12_small_model_still_wins() {
        let t = fig12();
        let amps = &t.rows[0].1;
        let s1 = &t.rows[1].1;
        assert!(amps[0].unwrap() < s1[0].unwrap());
        assert!(amps[1].unwrap() < s1[1].unwrap() * 0.1);
    }
}
