//! The paper's §2 motivation artifacts: Table 1 (deployment sizes),
//! Fig. 1 / Table 2 (MobileNet memory sweep), Fig. 2 (one-lambda vs
//! SageMaker), Table 3 (ResNet50 across ten lambdas).

use crate::Table;
use ampsinf_core::baselines::predict;
use ampsinf_core::plan::{ExecutionPlan, PartitionPlan};
use ampsinf_core::{AmpsConfig, Coordinator};
use ampsinf_faas::runtime::whole_model;
use ampsinf_model::zoo;
use ampsinf_model::LayerGraph;
use ampsinf_profiler::{quick_eval, Profile};
use ampsinf_serving::sagemaker::{run_sagemaker, SageConfig, SageSetting};

/// Single-lambda whole-model end-to-end (deploy + invoke), as in §2.2.1's
/// "end-to-end completion time starting from model upload".
fn single_lambda_e2e(graph: &LayerGraph, memory_mb: u32, cfg: &AmpsConfig) -> Option<(f64, f64)> {
    let coord = Coordinator::new(cfg.clone());
    let mut platform = coord.platform();
    let work = whole_model(graph);
    let spec = work.function_spec(graph.name.clone(), memory_mb);
    let (fid, deploy_s) = platform.deploy(spec).ok()?;
    let out = platform
        .invoke(fid, 0.0, &work.invocation(None, None))
        .ok()?;
    let _ = coord;
    Some((deploy_s + out.duration(), out.dollars))
}

/// Table 1: model and deployment sizes.
pub fn table1() -> Table {
    let mut t = Table::new(
        "table1",
        "Model and deployment sizes (deployment = model + 169 MB deps + handler)",
        &[
            "model (MB)",
            "deployment (MB)",
            "paper model",
            "paper deploy",
        ],
    );
    let paper: &[(&str, f64, f64)] = &[("resnet50", 98.0, 267.0), ("inception_v3", 92.0, 261.0)];
    for g in [
        zoo::resnet50(),
        zoo::inception_v3(),
        zoo::xception(),
        zoo::mobilenet_v1(),
        zoo::vgg16(),
    ] {
        let model_mb = g.weight_bytes() as f64 / 1024.0 / 1024.0;
        let deploy_mb =
            whole_model(&g).function_spec(&g.name, 1024).package_bytes() as f64 / 1024.0 / 1024.0;
        let p = paper.iter().find(|(n, _, _)| *n == g.name);
        t.row(
            g.name.clone(),
            vec![
                Some(model_mb),
                Some(deploy_mb),
                p.map(|(_, m, _)| *m),
                p.map(|(_, _, d)| *d),
            ],
        );
    }
    t.notes =
        "Shape: ResNet50/InceptionV3/Xception/VGG exceed the 250 MB limit; MobileNet does not. \
               Model sizes are exact (parameter counts match Keras to the digit)."
            .into();
    t
}

/// Fig. 1: MobileNet cost & completion vs memory, 256→3008 MB (44 blocks).
pub fn fig1() -> Table {
    let g = zoo::mobilenet_v1();
    let cfg = AmpsConfig::default();
    let profile = Profile::of(&g);
    let n = g.num_layers();
    let mut t = Table::new(
        "fig1",
        "MobileNet 1-image completion time and cost vs memory block",
        &["time (s)", "cost ($)"],
    );
    for mem in cfg.quotas.memory_blocks() {
        if mem < 256 {
            // The paper's x-axis starts at 256 MB: 128 MB cannot finish.
            continue;
        }
        match quick_eval(
            &profile,
            0,
            n - 1,
            mem,
            &cfg.quotas,
            &cfg.prices,
            &cfg.perf,
            &cfg.store,
            true,
            true,
        ) {
            Ok(e) => t.row_all(format!("{mem} MB"), &[e.duration_s, e.dollars]),
            Err(_) => t.row(format!("{mem} MB"), vec![None, None]),
        }
    }
    t.notes = "Shape: time decreases monotonically and saturates past 1792 MB; cost is \
               non-monotone with its minimum strictly inside the grid. 128 MB is \
               infeasible, as the paper observes. Deviation: the paper reports several \
               local cost minima (measurement noise + 100 ms billing round-up); our \
               deterministic model shows one interior minimum with the same U-shape."
        .into();
    t
}

/// Table 2: the Fig. 1 sweep at the paper's five printed points.
pub fn table2() -> Table {
    let g = zoo::mobilenet_v1();
    let cfg = AmpsConfig::default();
    let profile = Profile::of(&g);
    let n = g.num_layers();
    let mut t = Table::new(
        "table2",
        "MobileNet serving (one image) per memory type",
        &["time (s)", "cost ($)", "paper time", "paper cost"],
    );
    let paper = [
        (512u32, 22.03, 0.00018),
        (1024, 10.65, 0.00017),
        (1536, 7.52, 0.00019),
        (2048, 6.38, 0.00021),
        (3008, 6.32, 0.00031),
    ];
    for (mem, pt, pc) in paper {
        let e = quick_eval(
            &profile,
            0,
            n - 1,
            mem,
            &cfg.quotas,
            &cfg.prices,
            &cfg.perf,
            &cfg.store,
            true,
            true,
        )
        .expect("MobileNet runs at these blocks");
        t.row_all(format!("{mem} MB"), &[e.duration_s, e.dollars, pt, pc]);
    }
    t.notes = "Shape: ~2× speedup 512→1024, saturation 2048→3008, cost minimum at ~1 GB \
               then rising to its maximum at 3008 MB — the paper's Table 2 pattern."
        .into();
    t
}

/// Fig. 2: MobileNet one image — Lambda-512 vs Sage 1 vs Sage 2.
pub fn fig2() -> Table {
    let g = zoo::mobilenet_v1();
    let cfg = AmpsConfig::default();
    let mut t = Table::new(
        "fig2",
        "MobileNet serving in Lambda (512 MB), Sage 1, Sage 2",
        &["time (s)", "cost ($)", "paper time", "paper cost"],
    );
    let (lam_t, lam_c) = single_lambda_e2e(&g, 512, &cfg).expect("MobileNet fits one lambda");
    t.row_all("Lambda 512MB", &[lam_t, lam_c, 22.03, 0.00018]);
    let s1 = run_sagemaker(
        &g,
        SageSetting::Sage1,
        1,
        &SageConfig::default(),
        &cfg.perf,
        &cfg.prices,
    );
    t.row(
        "Sage 1",
        vec![Some(s1.completion_s), Some(s1.dollars), None, None],
    );
    let s2 = run_sagemaker(
        &g,
        SageSetting::Sage2,
        1,
        &SageConfig::default(),
        &cfg.perf,
        &cfg.prices,
    );
    t.row(
        "Sage 2",
        vec![Some(s2.completion_s), Some(s2.dollars), None, None],
    );
    t.notes = "Shape: Lambda is the cheapest by orders of magnitude; Sage 2's completion \
               dwarfs everything (hosting-endpoint creation); Sage 1 completes in the same \
               ballpark as Lambda but costs ~100× more (notebook-instance time)."
        .into();
    t
}

/// Table 3: ResNet50 across ten sequential lambdas vs SageMaker.
pub fn table3() -> Table {
    let g = zoo::resnet50();
    let cfg = AmpsConfig::default();
    let profile = Profile::of(&g);
    let mut t = Table::new(
        "table3",
        "ResNet50 serving (one image): Sage 1 / Sage 2 / 10-lambda chains",
        &["time (s)", "cost ($)", "paper time", "paper cost"],
    );
    let s1 = run_sagemaker(
        &g,
        SageSetting::Sage1,
        1,
        &SageConfig::default(),
        &cfg.perf,
        &cfg.prices,
    );
    t.row_all("Sage 1", &[s1.completion_s, s1.dollars, 33.346, 0.014]);
    let s2 = run_sagemaker(
        &g,
        SageSetting::Sage2,
        1,
        &SageConfig::default(),
        &cfg.perf,
        &cfg.prices,
    );
    t.row_all("Sage 2", &[s2.completion_s, s2.dollars, 484.509, 0.056]);
    // Ten near-equal partitions, one shared memory size (the paper's
    // random 10-way split).
    for (mem, pt, pc) in [(512u32, 47.078, 0.0017), (1024, 21.799, 0.0011)] {
        let mut plan = ten_way_plan(&g, mem);
        assert!(predict(&profile, &mut plan, &cfg), "10-way chain feasible");
        let coord = Coordinator::new(cfg.clone());
        let mut platform = coord.platform();
        let dep = coord.deploy(&mut platform, &g, &plan).unwrap();
        let job = coord.serve_one(&mut platform, &dep, 0.0, "t3").unwrap();
        let dollars = job.dollars + platform.settle_storage(job.inference_s);
        t.row_all(
            format!("Lambda {mem}MB ×10"),
            &[job.inference_s, dollars, pt, pc],
        );
    }
    t.notes = "Shape: both lambda chains cost ~10× less than Sage 1 and ~50× less than \
               Sage 2; the 1024 MB chain halves the 512 MB chain's completion; Sage 2's \
               completion is dominated by deployment."
        .into();
    t
}

/// Ten contiguous partitions with (roughly) equal layer counts.
pub fn ten_way_plan(g: &LayerGraph, mem: u32) -> ExecutionPlan {
    let n = g.num_layers();
    let mut partitions = Vec::with_capacity(10);
    let mut start = 0usize;
    for i in 0..10 {
        let end = if i == 9 {
            n - 1
        } else {
            (n * (i + 1)) / 10 - 1
        };
        partitions.push(PartitionPlan {
            start,
            end,
            memory_mb: mem,
        });
        start = end + 1;
    }
    ExecutionPlan {
        model: g.name.clone(),
        partitions,
        predicted_time_s: 0.0,
        predicted_cost: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_present() {
        let t = table1();
        assert_eq!(t.rows.len(), 5);
        // ResNet50 deployment > 250 MB, MobileNet < 250 MB.
        let rn = &t.rows[0].1;
        assert!(rn[1].unwrap() > 250.0);
        let mob = &t.rows[3].1;
        assert!(mob[1].unwrap() < 250.0);
    }

    #[test]
    fn fig1_shape_holds() {
        let t = fig1();
        assert_eq!(t.rows.len(), 44); // 256..=3008 in 64 MB steps
        let times: Vec<f64> = t.rows.iter().filter_map(|(_, v)| v[0]).collect();
        assert_eq!(times.len(), 44, "every block from 256 MB runs");
        // Monotone non-increasing (within numerical dust).
        for w in times.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
        // Cost minimum strictly inside.
        let costs: Vec<f64> = t.rows.iter().filter_map(|(_, v)| v[1]).collect();
        let (imin, _) = costs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!(imin > 0 && imin < costs.len() - 1, "min at index {imin}");
    }

    #[test]
    fn table2_shape_holds() {
        let t = table2();
        let get = |r: usize, c: usize| t.rows[r].1[c].unwrap();
        // time(512)/time(1024) ≈ 2.
        let ratio = get(0, 0) / get(1, 0);
        assert!(ratio > 1.6 && ratio < 2.5, "{ratio}");
        // saturation: 2048 ≈ 3008.
        assert!((get(3, 0) - get(4, 0)).abs() < 0.2);
        // cost max at 3008.
        let c3008 = get(4, 1);
        for r in 0..4 {
            assert!(get(r, 1) < c3008);
        }
    }

    #[test]
    fn fig2_lambda_cheapest() {
        let t = fig2();
        let lam_cost = t.rows[0].1[1].unwrap();
        let s1_cost = t.rows[1].1[1].unwrap();
        let s2_cost = t.rows[2].1[1].unwrap();
        assert!(lam_cost < s1_cost / 10.0);
        assert!(s1_cost < s2_cost);
        // Sage 2 slowest by far.
        assert!(t.rows[2].1[0].unwrap() > 5.0 * t.rows[0].1[0].unwrap());
    }

    #[test]
    fn table3_shape_holds() {
        let t = table3();
        let sage1_cost = t.rows[0].1[1].unwrap();
        let sage2_cost = t.rows[1].1[1].unwrap();
        let lam512 = &t.rows[2].1;
        let lam1024 = &t.rows[3].1;
        assert!(lam512[1].unwrap() < sage1_cost);
        assert!(lam1024[1].unwrap() < sage1_cost);
        assert!(sage2_cost > sage1_cost);
        // 1024 chain ≈ half the 512 chain's time.
        let ratio = lam512[0].unwrap() / lam1024[0].unwrap();
        assert!(ratio > 1.5 && ratio < 2.6, "{ratio}");
    }
}
