//! `ext-sweep` — the cost-vs-SLO curve behind the paper's Fig. 8 cost
//! discussion, produced by one amortized [`Optimizer::optimize_sweep`]
//! call instead of N independent solves, with the Pareto frontier and
//! knee marked.

use crate::Table;
use ampsinf_core::{AmpsConfig, Optimizer, SweepGrid};
use ampsinf_model::zoo;
use std::time::Instant;

/// ResNet-50 cost vs SLO over a 12-point grid spanning 0.9–1.5× the
/// unconstrained optimum's time, plus the measured amortization factor.
pub fn ext_sweep() -> Table {
    let g = zoo::resnet50();
    let cfg = AmpsConfig::default();
    let free = Optimizer::new(cfg.clone().with_threads(1))
        .optimize(&g)
        .unwrap();
    let t_free = free.plan.predicted_time_s;
    let grid = SweepGrid::slo_range(t_free * 0.9, t_free * 1.5, 12);

    let sweep_t0 = Instant::now();
    let report = Optimizer::new(cfg.clone().with_threads(1)).optimize_sweep(&g, &grid);
    let sweep_time = sweep_t0.elapsed();
    let cold_t0 = Instant::now();
    for &s in &grid.slos {
        let _ = Optimizer::new(cfg.clone().with_slo(s).with_threads(1)).optimize(&g);
    }
    let cold_time = cold_t0.elapsed();

    let mut t = Table::new(
        "ext-sweep",
        "ResNet50 cost vs SLO, 12-point amortized sweep (frontier: 2=knee, 1=pareto, 0=dominated)",
        &["time (s)", "cost ($)", "lambdas", "frontier"],
    );
    for p in &report.points {
        let label = format!("slo={:.2}s", p.slo_s);
        match &p.outcome {
            Ok(plan) => {
                let frontier = if p.knee {
                    2.0
                } else if p.dominated {
                    0.0
                } else {
                    1.0
                };
                t.row_all(
                    label,
                    &[
                        plan.predicted_time_s,
                        plan.predicted_cost,
                        plan.num_lambdas() as f64,
                        frontier,
                    ],
                );
            }
            Err(_) => t.row(label, vec![None, None, None, None]),
        }
    }
    let speedup = cold_time.as_secs_f64() / sweep_time.as_secs_f64().max(1e-9);
    t.notes = format!(
        "Shape: cost is monotone non-increasing as the SLO loosens (every plan bit-identical \
         to an independent solve); the knee marks where extra latency stops buying savings. \
         Amortization: one sweep call took {:.0} ms vs {:.0} ms for 12 cold solves \
         ({speedup:.1}x) via shared pass-1 state and cross-point bound seeding.",
        sweep_time.as_secs_f64() * 1000.0,
        cold_time.as_secs_f64() * 1000.0,
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext_sweep_cost_is_monotone_and_frontier_nonempty() {
        let t = ext_sweep();
        assert_eq!(t.rows.len(), 12);
        let solved: Vec<&Vec<Option<f64>>> = t
            .rows
            .iter()
            .map(|(_, v)| v)
            .filter(|v| v[1].is_some())
            .collect();
        assert!(solved.len() >= 3, "most of the grid should be feasible");
        for w in solved.windows(2) {
            assert!(
                w[1][1].unwrap() <= w[0][1].unwrap() + 1e-12,
                "cost must not increase as the SLO loosens"
            );
        }
        assert!(
            solved.iter().any(|v| v[3].unwrap() >= 1.0),
            "frontier must be marked"
        );
    }
}
