//! One module per group of paper experiments; [`registry`] maps ids to
//! runnable experiments.

mod baseline_cmp;
mod extensions;
mod motivation;
mod overhead;
mod related;
mod sagemaker_cmp;
mod sweep;

use crate::Table;

/// An experiment id paired with the function that produces its table.
pub type Experiment = (&'static str, fn() -> Table);

/// All experiment ids in paper order, with the producing function.
pub fn registry() -> Vec<Experiment> {
    vec![
        ("table1", motivation::table1 as fn() -> Table),
        ("fig1", motivation::fig1),
        ("table2", motivation::table2),
        ("fig2", motivation::fig2),
        ("table3", motivation::table3),
        ("fig5", sagemaker_cmp::fig5),
        ("fig6", sagemaker_cmp::fig6),
        ("table4", sagemaker_cmp::table4),
        ("fig7", sagemaker_cmp::fig7),
        ("fig8", sagemaker_cmp::fig8),
        ("fig9", baseline_cmp::fig9),
        ("fig10", baseline_cmp::fig10),
        ("fig11", related::fig11),
        ("fig12", sagemaker_cmp::fig12),
        ("table5", related::table5),
        ("fig13", related::fig13),
        ("overhead", overhead::overhead),
        ("ext-store", extensions::ext_store),
        ("ext-branches", extensions::ext_branches),
        ("ext-quota", extensions::ext_quota),
        ("ext-quantize", extensions::ext_quantize),
        ("ext-pipeline", extensions::ext_pipeline),
        ("ext-stations", extensions::ext_stations),
        ("ext-parallel", extensions::ext_parallel),
        ("ext-costmodel", extensions::ext_costmodel),
        ("ext-load", extensions::ext_load),
        ("ext-sweep", sweep::ext_sweep),
    ]
}

/// Runs one experiment by id.
pub fn run(id: &str) -> Option<Table> {
    registry()
        .into_iter()
        .find(|(eid, _)| *eid == id)
        .map(|(_, f)| f())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_paper_artifact() {
        let ids: Vec<&str> = registry().iter().map(|(id, _)| *id).collect();
        for required in [
            "table1", "table2", "table3", "table4", "table5", "fig1", "fig2", "fig5", "fig6",
            "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "overhead",
        ] {
            assert!(ids.contains(&required), "missing {required}");
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run("fig99").is_none());
    }
}
