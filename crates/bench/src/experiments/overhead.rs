//! §5.4 optimizer-overhead accounting: "the running time overhead of
//! AMPS-Inf incurred by the MIQP solver is within a few seconds on a
//! laptop"; "AMPS-Inf took a few milliseconds to accomplish the
//! configuration calculations" (§5.2).

use crate::Table;
use ampsinf_core::{AmpsConfig, Optimizer};
use ampsinf_model::zoo;

/// Optimizer overhead per evaluation model.
pub fn overhead() -> Table {
    let cfg = AmpsConfig::default();
    let mut t = Table::new(
        "overhead",
        "Optimizer overhead (cut enumeration + MIQP solving)",
        &[
            "solve time (s)",
            "cuts",
            "MIQPs",
            "lambdas",
            "paper bound (s)",
        ],
    );
    for g in [
        zoo::mobilenet_v1(),
        zoo::resnet50(),
        zoo::inception_v3(),
        zoo::xception(),
    ] {
        let r = Optimizer::new(cfg.clone()).optimize(&g).unwrap();
        t.row_all(
            g.name.clone(),
            &[
                r.solve_time.as_secs_f64(),
                r.cuts_considered as f64,
                r.miqps_solved as f64,
                r.plan.num_lambdas() as f64,
                5.0,
            ],
        );
    }
    t.notes = "Shape: end-to-end optimization stays within the paper's 'few seconds on a \
               laptop' bound for every model."
        .into();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_within_paper_bound() {
        let t = overhead();
        for (label, v) in &t.rows {
            // Generous CI allowance over the paper's "few seconds".
            assert!(v[0].unwrap() < 30.0, "{label}: {:?} s", v[0]);
            assert!(v[1].unwrap() >= 1.0);
        }
    }
}
