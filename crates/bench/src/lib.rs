//! Reproduction harness: one experiment per table/figure of the paper.
//!
//! Every experiment returns a [`Table`]; the `repro` binary renders it to
//! the terminal or regenerates `EXPERIMENTS.md` (`repro all`). Where the
//! paper prints concrete numbers, the experiment carries them as
//! `paper …` columns so the shape comparison is one glance.

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;

/// A rendered experiment result.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id (`fig7`, `table2`, …).
    pub id: &'static str,
    /// Human title (what the paper's caption says).
    pub title: String,
    /// Column headers (after the row label).
    pub columns: Vec<String>,
    /// Rows: label + one value per column (`None` renders as `-`).
    pub rows: Vec<(String, Vec<Option<f64>>)>,
    /// Shape-fidelity notes: what must hold, and how it compares to the
    /// paper's numbers.
    pub notes: String,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &'static str, title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            id,
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: String::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, label: impl Into<String>, values: Vec<Option<f64>>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.into(), values));
    }

    /// Appends a row of plain values.
    pub fn row_all(&mut self, label: impl Into<String>, values: &[f64]) {
        self.row(label.into(), values.iter().map(|v| Some(*v)).collect());
    }

    /// Renders a terminal table.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "== {} — {} ==", self.id, self.title);
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([18])
            .max()
            .unwrap();
        let _ = write!(s, "{:<label_w$}", "");
        for c in &self.columns {
            let _ = write!(s, " {c:>14}");
        }
        let _ = writeln!(s);
        for (label, vals) in &self.rows {
            let _ = write!(s, "{label:<label_w$}");
            for v in vals {
                match v {
                    Some(x) => {
                        let _ = write!(s, " {:>14}", fmt_value(*x));
                    }
                    None => {
                        let _ = write!(s, " {:>14}", "-");
                    }
                }
            }
            let _ = writeln!(s);
        }
        if !self.notes.is_empty() {
            let _ = writeln!(s, "-- {}", self.notes);
        }
        s
    }

    /// Renders a Markdown table (for EXPERIMENTS.md).
    pub fn markdown(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "### `{}` — {}\n", self.id, self.title);
        let _ = write!(s, "| |");
        for c in &self.columns {
            let _ = write!(s, " {c} |");
        }
        let _ = writeln!(s);
        let _ = write!(s, "|---|");
        for _ in &self.columns {
            let _ = write!(s, "---|");
        }
        let _ = writeln!(s);
        for (label, vals) in &self.rows {
            let _ = write!(s, "| {label} |");
            for v in vals {
                match v {
                    Some(x) => {
                        let _ = write!(s, " {} |", fmt_value(*x));
                    }
                    None => {
                        let _ = write!(s, " - |");
                    }
                }
            }
            let _ = writeln!(s);
        }
        if !self.notes.is_empty() {
            let _ = writeln!(s, "\n{}\n", self.notes);
        }
        s
    }
}

/// Compact value formatting: dollars and sub-unit values keep precision,
/// larger magnitudes round sensibly.
fn fmt_value(x: f64) -> String {
    let a = x.abs();
    if a == 0.0 {
        "0".into()
    } else if a < 0.01 {
        format!("{x:.6}")
    } else if a < 1.0 {
        format!("{x:.4}")
    } else if a < 100.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_markdown() {
        let mut t = Table::new("fig0", "demo", &["time (s)", "cost ($)"]);
        t.row_all("Lambda", &[22.03, 0.00018]);
        t.row("Sage 2", vec![Some(484.5), None]);
        t.notes = "shape: Lambda cheapest".into();
        let r = t.render();
        assert!(r.contains("fig0"));
        assert!(r.contains("22.03"));
        assert!(r.contains("0.000180"));
        assert!(r.contains('-'));
        let m = t.markdown();
        assert!(m.starts_with("### `fig0`"));
        assert!(m.contains("| Lambda | 22.03 | 0.000180 |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", "y", &["a", "b"]);
        t.row_all("bad", &[1.0]);
    }

    #[test]
    fn value_formatting() {
        assert_eq!(fmt_value(0.0), "0");
        assert_eq!(fmt_value(0.00018), "0.000180");
        assert_eq!(fmt_value(0.25), "0.2500");
        assert_eq!(fmt_value(22.031), "22.03");
        assert_eq!(fmt_value(484.51), "484.5");
    }
}
