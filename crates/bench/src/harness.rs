//! Minimal benchmark harness: warmup, auto-calibrated batching, and
//! min/median/mean reporting — dependency-free so the bench targets build
//! in hermetic environments.
//!
//! Fast operations (µs-scale) are batched so each sample spans at least a
//! millisecond; slow ones (the end-to-end optimizer) time single calls.

use ampsinf_model::json::Json;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark's timing summary, in seconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id, e.g. `optimize/vgg16/threads=2`.
    pub name: String,
    /// Timed samples collected.
    pub samples: usize,
    /// Iterations per sample (batched for fast operations).
    pub inner_iters: usize,
    /// Fastest sample.
    pub min_s: f64,
    /// Median sample.
    pub median_s: f64,
    /// Mean over all samples.
    pub mean_s: f64,
    /// Work items (e.g. simulated requests) each iteration processes;
    /// 0 when the benchmark has no natural item count.
    pub items: usize,
}

impl BenchResult {
    /// Items per second at the median, when `items` is set.
    pub fn throughput_req_s(&self) -> Option<f64> {
        (self.items > 0 && self.median_s > 0.0).then(|| self.items as f64 / self.median_s)
    }
}

/// Collects benchmark results and renders them.
#[derive(Debug, Default)]
pub struct Bencher {
    results: Vec<BenchResult>,
}

impl Bencher {
    /// Creates an empty bencher.
    pub fn new() -> Self {
        Bencher {
            results: Vec::new(),
        }
    }

    /// Times `f`, collecting `samples` measurements after one warmup call.
    /// The warmup also calibrates batching: calls faster than ~1 ms are
    /// repeated until each sample spans at least that long.
    pub fn bench<T>(&mut self, name: &str, samples: usize, f: impl FnMut() -> T) {
        self.bench_items(name, samples, 0, f);
    }

    /// [`bench`](Bencher::bench) for throughput benchmarks: `items` is
    /// how many work items (requests, images, …) one iteration
    /// processes, and the report derives `throughput_req_s` =
    /// `items / median_s` from it.
    pub fn bench_items<T>(
        &mut self,
        name: &str,
        samples: usize,
        items: usize,
        mut f: impl FnMut() -> T,
    ) {
        assert!(samples > 0, "need at least one sample");
        let warm = Instant::now();
        black_box(f());
        let once = warm.elapsed();
        let floor = Duration::from_millis(1);
        let inner_iters = if once < floor {
            (floor.as_nanos() / once.as_nanos().max(1) + 1) as usize
        } else {
            1
        };
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..inner_iters {
                black_box(f());
            }
            times.push(t.elapsed().as_secs_f64() / inner_iters as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let result = BenchResult {
            name: name.to_string(),
            samples,
            inner_iters,
            min_s: times[0],
            median_s: times[times.len() / 2],
            mean_s: times.iter().sum::<f64>() / times.len() as f64,
            items,
        };
        let throughput = match result.throughput_req_s() {
            Some(t) => format!("  {:>10.0} req/s", t),
            None => String::new(),
        };
        println!(
            "{:<44} min {:>10}  median {:>10}  mean {:>10}  ({} x {}){throughput}",
            result.name,
            fmt_time(result.min_s),
            fmt_time(result.median_s),
            fmt_time(result.mean_s),
            result.samples,
            result.inner_iters,
        );
        self.results.push(result);
    }

    /// All collected results.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Renders results as a JSON document (median is the headline number).
    pub fn to_json(&self) -> String {
        let entries: Vec<Json> = self
            .results
            .iter()
            .map(|r| {
                let mut fields = vec![
                    ("name".into(), Json::from(r.name.as_str())),
                    ("samples".into(), Json::from(r.samples)),
                    ("inner_iters".into(), Json::from(r.inner_iters)),
                    ("min_s".into(), Json::Num(r.min_s)),
                    ("median_s".into(), Json::Num(r.median_s)),
                    ("mean_s".into(), Json::Num(r.mean_s)),
                ];
                if let Some(t) = r.throughput_req_s() {
                    fields.push(("items".into(), Json::from(r.items)));
                    fields.push(("throughput_req_s".into(), Json::Num(t)));
                }
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![("benchmarks".into(), Json::Arr(entries))]).render_pretty()
    }

    /// Compares collected medians against a previously recorded report (the
    /// format written by [`to_json`](Bencher::to_json)), printing the
    /// per-benchmark speedup factor. The baseline path comes from the
    /// `BENCH_BASELINE` environment variable, falling back to `default_path`;
    /// a missing or unreadable baseline silently skips the comparison.
    /// Returns whether a comparison was printed.
    pub fn compare_with_baseline(&self, default_path: &str) -> bool {
        let path = std::env::var("BENCH_BASELINE").unwrap_or_else(|_| default_path.to_string());
        let Ok(text) = std::fs::read_to_string(&path) else {
            return false;
        };
        let Ok(doc) = Json::parse(&text) else {
            println!("baseline {path}: unparseable, skipping comparison");
            return false;
        };
        let mut prior: Vec<(String, f64)> = Vec::new();
        if let Some(entries) = doc.get("benchmarks").and_then(Json::as_array) {
            for e in entries {
                if let (Some(name), Some(median)) = (
                    e.get("name").and_then(Json::as_str),
                    e.get("median_s").and_then(Json::as_f64),
                ) {
                    prior.push((name.to_string(), median));
                }
            }
        }
        if prior.is_empty() {
            return false;
        }
        println!("\nvs baseline {path} (median, baseline -> current):");
        for r in &self.results {
            match prior.iter().find(|(n, _)| *n == r.name) {
                Some((_, old)) if *old > 0.0 && r.median_s > 0.0 => {
                    println!(
                        "{:<44} {:>10} -> {:>10}  {:>8.2}x",
                        r.name,
                        fmt_time(*old),
                        fmt_time(r.median_s),
                        old / r.median_s
                    );
                }
                _ => println!("{:<44} (no baseline entry)", r.name),
            }
        }
        true
    }

    /// Writes the JSON report to the path named by the `BENCH_OUT`
    /// environment variable, if set. Returns whether a file was written.
    pub fn write_json_if_requested(&self) -> bool {
        match std::env::var_os("BENCH_OUT") {
            Some(path) => {
                std::fs::write(&path, self.to_json()).expect("write BENCH_OUT");
                println!("wrote {}", path.to_string_lossy());
                true
            }
            None => false,
        }
    }
}

/// Human-friendly duration formatting.
fn fmt_time(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1}ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_collects_sane_stats() {
        let mut b = Bencher::new();
        let mut counter = 0u64;
        b.bench("noop", 5, || {
            counter += 1;
            counter
        });
        let r = &b.results()[0];
        assert_eq!(r.samples, 5);
        assert!(r.inner_iters >= 1);
        assert!(r.min_s <= r.median_s && r.median_s <= r.mean_s * 5.0);
        assert!(r.min_s > 0.0);
    }

    #[test]
    fn json_shape() {
        let mut b = Bencher::new();
        b.bench("x", 2, || 1 + 1);
        let j = b.to_json();
        assert!(j.contains("\"benchmarks\""));
        assert!(j.contains("\"median_s\""));
        // No item count → no derived throughput field.
        assert!(!j.contains("throughput_req_s"));
    }

    #[test]
    fn item_benchmarks_derive_throughput() {
        let mut b = Bencher::new();
        b.bench_items("tp", 3, 1000, || std::hint::black_box(7u64 * 6));
        let r = &b.results()[0];
        assert_eq!(r.items, 1000);
        let t = r.throughput_req_s().expect("items set");
        assert!((t - 1000.0 / r.median_s).abs() < 1e-9);
        let j = b.to_json();
        assert!(j.contains("\"items\""));
        assert!(j.contains("\"throughput_req_s\""));
    }

    #[test]
    fn baseline_comparison_round_trips() {
        let mut b = Bencher::new();
        b.bench("roundtrip", 2, || 1 + 1);
        let path = std::env::temp_dir().join("ampsinf_bench_baseline_test.json");
        std::fs::write(&path, b.to_json()).unwrap();
        assert!(b.compare_with_baseline(path.to_str().unwrap()));
        std::fs::remove_file(&path).ok();
        assert!(!b.compare_with_baseline("/nonexistent/baseline.json"));
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(2.5e-9), "2.5ns");
        assert_eq!(fmt_time(2.5e-6), "2.50us");
        assert_eq!(fmt_time(2.5e-3), "2.50ms");
        assert_eq!(fmt_time(2.5), "2.500s");
    }
}
