//! The Profiler component of AMPS-Inf (paper §4, Fig. 4).
//!
//! "The Profiler calculates all the possible ways for the partition of the
//! given pre-trained model" and supplies the per-layer quantities the
//! optimization of §3 consumes: per-layer deployment size `e_i`, temporary
//! footprint `z_i`, workload `d_i`, boundary transfer sizes `p_i`, and the
//! unit execution times `u_{j,i}` over the platform's memory blocks.
//!
//! Two layers of API:
//!
//! * [`Profile`] — prefix-summed per-layer tables for O(1) segment
//!   aggregation and constraint pruning (paper constraints (4)–(7));
//! * [`evaluate_segment`] — the ground-truth (time, cost) of running one
//!   partition at one memory size. To keep the optimizer's objective
//!   *identical* to the simulator's behaviour, this literally deploys and
//!   invokes the partition on a scratch [`Platform`] instance — the paper's
//!   profiling runs, compressed.

#![warn(missing_docs)]

use ampsinf_faas::perf::DurationBreakdown;
use ampsinf_faas::platform::Platform;
use ampsinf_faas::runtime::{PartitionWork, CODE_BYTES, DEPS_BYTES};
use ampsinf_faas::{PerfModel, PriceSheet, Quotas, StoreKind, MB};
use ampsinf_model::LayerGraph;

/// Per-layer profile entry (the paper's `e_i`, `d_i`, `z_i` carriers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerProfile {
    /// Weight bytes (`e_i × 4`-scaled; already in bytes).
    pub weight_bytes: u64,
    /// Forward FLOPs (`d_i`-equivalent workload).
    pub flops: u64,
    /// Output activation bytes.
    pub output_bytes: u64,
}

/// Precomputed per-model tables for fast segment math.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Model name.
    pub model: String,
    /// Per-layer entries in topological order.
    pub layers: Vec<LayerProfile>,
    /// `boundary_bytes[k]` = bytes crossing the cut after layer `k`
    /// (the paper's `p` vector, residual edges included).
    pub boundary_bytes: Vec<u64>,
    prefix_weights: Vec<u64>,
    prefix_flops: Vec<u64>,
    prefix_activations: Vec<u64>,
}

impl Profile {
    /// Profiles a model graph for single-image serving.
    pub fn of(graph: &LayerGraph) -> Self {
        Self::batched(graph, 1)
    }

    /// Profiles a model graph for batches of `batch` images per request:
    /// compute, activations and boundary transfers scale with the batch;
    /// weights do not (that is what makes batching cheaper per image, and
    /// why the paper's §5.4 batch plans pick larger memory blocks).
    pub fn batched(graph: &LayerGraph, batch: u64) -> Self {
        let n = graph.num_layers();
        let mut layers = Vec::with_capacity(n);
        let mut prefix_weights = Vec::with_capacity(n + 1);
        let mut prefix_flops = Vec::with_capacity(n + 1);
        let mut prefix_activations = Vec::with_capacity(n + 1);
        prefix_weights.push(0);
        prefix_flops.push(0);
        prefix_activations.push(0);
        assert!(batch >= 1, "batch must be at least 1");
        for node in graph.nodes() {
            let lp = LayerProfile {
                weight_bytes: node.params * graph.bytes_per_param(),
                flops: node.flops * batch,
                output_bytes: node.output_shape.bytes() * batch,
            };
            prefix_weights.push(prefix_weights.last().unwrap() + lp.weight_bytes);
            prefix_flops.push(prefix_flops.last().unwrap() + lp.flops);
            prefix_activations.push(prefix_activations.last().unwrap() + lp.output_bytes);
            layers.push(lp);
        }
        let boundary_bytes = (0..n)
            .map(|k| graph.cut_transfer_bytes(k) * batch)
            .collect();
        Profile {
            model: graph.name.clone(),
            layers,
            boundary_bytes,
            prefix_weights,
            prefix_flops,
            prefix_activations,
        }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Weight bytes of layers `[start, end]` (O(1)).
    pub fn weights(&self, start: usize, end: usize) -> u64 {
        self.prefix_weights[end + 1] - self.prefix_weights[start]
    }

    /// FLOPs of layers `[start, end]` (O(1)).
    pub fn flops(&self, start: usize, end: usize) -> u64 {
        self.prefix_flops[end + 1] - self.prefix_flops[start]
    }

    /// Activation bytes materialized in `[start, end]` (O(1)).
    pub fn activations(&self, start: usize, end: usize) -> u64 {
        self.prefix_activations[end + 1] - self.prefix_activations[start]
    }

    /// Bytes entering a segment starting at `start` (`p_{i-1}`).
    pub fn input_bytes(&self, start: usize) -> u64 {
        if start == 0 {
            self.layers[0].output_bytes
        } else {
            self.boundary_bytes[start - 1]
        }
    }

    /// Bytes leaving a segment ending at `end` (`p_i`).
    pub fn output_bytes(&self, end: usize) -> u64 {
        self.boundary_bytes[end]
    }

    /// Deployment-size feasibility of a segment (paper constraint (4)):
    /// `y·e + D + F ≤ A`.
    pub fn fits_deployment(&self, start: usize, end: usize, quotas: &Quotas) -> bool {
        self.weights(start, end) + DEPS_BYTES + CODE_BYTES <= u64::from(quotas.deploy_limit_mb) * MB
    }

    /// Temporary-storage feasibility (paper constraint (5)):
    /// `y·z + p_{i-1} ≤ J`.
    pub fn fits_tmp(&self, start: usize, end: usize, quotas: &Quotas) -> bool {
        self.weights(start, end) + self.input_bytes(start) <= u64::from(quotas.tmp_limit_mb) * MB
    }

    /// The paper's constraint (7): smallest allocatable memory block that
    /// can hold the segment's resident footprint, or `None` when even the
    /// largest block cannot (infeasible partition).
    pub fn memory_floor(
        &self,
        start: usize,
        end: usize,
        quotas: &Quotas,
        perf: &PerfModel,
    ) -> Option<u32> {
        let resident =
            2 * self.weights(start, end) + self.activations(start, end) + self.input_bytes(start);
        let footprint_mb = perf.runtime_footprint_mb + resident as f64 / MB as f64;
        let need_mb = (perf.oom_fraction * footprint_mb).ceil() as u32 + 1;
        quotas.round_up_memory(need_mb)
    }

    /// Memory blocks worth considering for a segment: the grid filtered by
    /// constraint (7)'s floor. Fine-grained quota regimes (the post-2020
    /// 1 MB-step preset has ~10k blocks) are thinned to a 64-point grid —
    /// the optimizer's search stays tractable and any returned block is
    /// still exactly allocatable.
    pub fn feasible_memories(
        &self,
        start: usize,
        end: usize,
        quotas: &Quotas,
        perf: &PerfModel,
    ) -> Vec<u32> {
        match self.memory_floor(start, end, quotas, perf) {
            None => Vec::new(),
            Some(floor) => quotas
                .memory_blocks_search_grid()
                .into_iter()
                .filter(|&m| m >= floor)
                .collect(),
        }
    }
}

/// Profiles `graph` once per **distinct** batch size in `batches`,
/// preserving first-occurrence order. A sweep over an SLO × batch grid
/// profiles each batch exactly once regardless of how many grid rows
/// share it.
pub fn batched_unique(graph: &LayerGraph, batches: &[u64]) -> Vec<(u64, Profile)> {
    let mut out: Vec<(u64, Profile)> = Vec::new();
    for &b in batches {
        if !out.iter().any(|(seen, _)| *seen == b) {
            out.push((b, Profile::batched(graph, b)));
        }
    }
    out
}

/// Ground-truth evaluation of one partition at one memory size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentEval {
    /// Wall-clock duration (cold invocation), seconds.
    pub duration_s: f64,
    /// Dollars billed to this invocation (compute + request + storage
    /// request fees).
    pub dollars: f64,
    /// Phase breakdown.
    pub breakdown: DurationBreakdown,
}

/// Evaluation failure: the segment cannot run in this configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Deployment rejected (constraint (4) or memory validity).
    Deploy(String),
    /// Invocation rejected (OOM, `/tmp`, timeout).
    Invoke(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Deploy(e) => write!(f, "deploy: {e}"),
            EvalError::Invoke(e) => write!(f, "invoke: {e}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Runs layers `[start, end]` of `graph` at `memory_mb` on a scratch
/// platform and reports the measured (duration, dollars).
///
/// `is_first` / `is_last` control the storage wiring: a first partition
/// receives its image with the trigger (no GET), a last partition returns
/// its prediction in the response (no PUT) — exactly the paper's chain.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_segment(
    graph: &LayerGraph,
    start: usize,
    end: usize,
    memory_mb: u32,
    quotas: &Quotas,
    prices: &PriceSheet,
    perf: &PerfModel,
    store: StoreKind,
    is_first: bool,
    is_last: bool,
) -> Result<SegmentEval, EvalError> {
    let mut platform = Platform::new(*quotas, *prices, *perf, store);
    let work = PartitionWork::from_segment(graph, start, end);
    let spec = work.function_spec(format!("{}[{start}..{end}]", graph.name), memory_mb);
    let (fid, _deploy_s) = platform
        .deploy(spec)
        .map_err(|e| EvalError::Deploy(e.to_string()))?;

    let input_key = (!is_first).then(|| platform.store.intern("profile/in"));
    let output_key = (!is_last).then(|| platform.store.intern("profile/out"));
    if input_key.is_some() {
        // Stage the upstream tensor so the GET has something to read.
        let mut scratch = ampsinf_faas::CostLedger::new();
        platform
            .store
            .put(
                "profile/in",
                work.seg.input_bytes,
                0.0,
                prices,
                &mut scratch,
            )
            .expect("staging put cannot fail on a non-flaky store");
    }
    let invocation = work.invocation(input_key, output_key);
    let out = platform
        .invoke(fid, 0.0, &invocation)
        .map_err(|e| EvalError::Invoke(e.to_string()))?;
    Ok(SegmentEval {
        duration_s: out.duration(),
        dollars: out.dollars,
        breakdown: out.breakdown,
    })
}

/// Closed-form twin of [`evaluate_segment`]: the same arithmetic the
/// platform performs, without constructing a platform. Used by the
/// exhaustive searches (Baseline 3 sweeps hundreds of thousands of
/// segment × memory points). `tests::quick_eval_equals_platform` pins the
/// two paths to bit-equal results.
#[allow(clippy::too_many_arguments)]
pub fn quick_eval(
    profile: &Profile,
    start: usize,
    end: usize,
    memory_mb: u32,
    quotas: &Quotas,
    prices: &PriceSheet,
    perf: &PerfModel,
    store: &StoreKind,
    is_first: bool,
    is_last: bool,
) -> Result<SegmentEval, EvalError> {
    use ampsinf_faas::perf::LambdaPerf;

    if !quotas.is_valid_memory(memory_mb) {
        return Err(EvalError::Deploy(format!("invalid memory {memory_mb}")));
    }
    let weights = profile.weights(start, end);
    let package = CODE_BYTES + DEPS_BYTES + weights;
    if package > u64::from(quotas.deploy_limit_mb) * MB {
        return Err(EvalError::Deploy("package too large".into()));
    }
    let input_bytes = profile.input_bytes(start);
    let tmp = weights + input_bytes;
    if tmp > u64::from(quotas.tmp_limit_mb) * MB {
        return Err(EvalError::Invoke("tmp exceeded".into()));
    }
    let resident = 2 * weights + profile.activations(start, end) + input_bytes;
    let footprint_mb = perf.runtime_footprint_mb + resident as f64 / MB as f64;
    let lp = LambdaPerf::new(perf, memory_mb);
    if lp.is_oom(footprint_mb) {
        return Err(EvalError::Invoke("out of memory".into()));
    }

    let mut b = DurationBreakdown {
        cold_s: lp.cold_start(package),
        import_s: lp.cpu_time(lp.import_work(), footprint_mb),
        load_s: lp.cpu_time(lp.load_work(weights), footprint_mb),
        compute_s: lp.cpu_time(lp.compute_work(profile.flops(start, end)), footprint_mb),
        transfer_s: 0.0,
        fixed_s: perf.fixed_overhead_s,
    };
    let mut fees = 0.0;
    let xfer = |bytes: u64| bytes as f64 / (store.bandwidth_mbps * 1e6) + store.request_latency_s;
    if !is_first {
        b.transfer_s += xfer(input_bytes);
        if store.billed_requests {
            fees += prices.s3_get_request;
        }
    }
    if !is_last {
        b.transfer_s += xfer(profile.output_bytes(end));
        if store.billed_requests {
            fees += prices.s3_put_request;
        }
    }
    let duration = b.total();
    if duration > quotas.timeout_s {
        return Err(EvalError::Invoke("timeout".into()));
    }
    let dollars = prices.lambda_compute_cost(duration, memory_mb) + prices.lambda_request + fees;
    Ok(SegmentEval {
        duration_s: duration,
        dollars,
        breakdown: b,
    })
}

/// Closed-form evaluation of one *DAG partition node*: the same
/// arithmetic as [`quick_eval`], but with explicit storage objects
/// instead of the chain's implicit one-in/one-out wiring — `read_bytes`
/// carries one entry per input object (one GET + fee each), `write_bytes`
/// one per output object (one PUT + fee each). A scatter consumer reads
/// its branch input as one object; a gather node reads one object per
/// branch. The staged input (which feeds `/tmp` and the resident
/// footprint exactly as in the chain) is the sum of `read_bytes`, or the
/// model input size for the root node (whose image arrives with the
/// trigger — no GET, like the chain's first partition).
///
/// For a chain-shaped node list this is bit-equal to [`quick_eval`]:
/// `tests::quick_eval_node_matches_quick_eval_on_chain` pins it.
#[allow(clippy::too_many_arguments)]
pub fn quick_eval_node(
    profile: &Profile,
    start: usize,
    end: usize,
    memory_mb: u32,
    quotas: &Quotas,
    prices: &PriceSheet,
    perf: &PerfModel,
    store: &StoreKind,
    read_bytes: &[u64],
    write_bytes: &[u64],
) -> Result<SegmentEval, EvalError> {
    use ampsinf_faas::perf::LambdaPerf;

    if !quotas.is_valid_memory(memory_mb) {
        return Err(EvalError::Deploy(format!("invalid memory {memory_mb}")));
    }
    let weights = profile.weights(start, end);
    let package = CODE_BYTES + DEPS_BYTES + weights;
    if package > u64::from(quotas.deploy_limit_mb) * MB {
        return Err(EvalError::Deploy("package too large".into()));
    }
    let input_bytes = if read_bytes.is_empty() {
        profile.input_bytes(start)
    } else {
        read_bytes.iter().sum()
    };
    let tmp = weights + input_bytes;
    if tmp > u64::from(quotas.tmp_limit_mb) * MB {
        return Err(EvalError::Invoke("tmp exceeded".into()));
    }
    let resident = 2 * weights + profile.activations(start, end) + input_bytes;
    let footprint_mb = perf.runtime_footprint_mb + resident as f64 / MB as f64;
    let lp = LambdaPerf::new(perf, memory_mb);
    if lp.is_oom(footprint_mb) {
        return Err(EvalError::Invoke("out of memory".into()));
    }

    let mut b = DurationBreakdown {
        cold_s: lp.cold_start(package),
        import_s: lp.cpu_time(lp.import_work(), footprint_mb),
        load_s: lp.cpu_time(lp.load_work(weights), footprint_mb),
        compute_s: lp.cpu_time(lp.compute_work(profile.flops(start, end)), footprint_mb),
        transfer_s: 0.0,
        fixed_s: perf.fixed_overhead_s,
    };
    let mut fees = 0.0;
    let xfer = |bytes: u64| bytes as f64 / (store.bandwidth_mbps * 1e6) + store.request_latency_s;
    for &r in read_bytes {
        b.transfer_s += xfer(r);
        if store.billed_requests {
            fees += prices.s3_get_request;
        }
    }
    for &w in write_bytes {
        b.transfer_s += xfer(w);
        if store.billed_requests {
            fees += prices.s3_put_request;
        }
    }
    let duration = b.total();
    if duration > quotas.timeout_s {
        return Err(EvalError::Invoke("timeout".into()));
    }
    let dollars = prices.lambda_compute_cost(duration, memory_mb) + prices.lambda_request + fees;
    Ok(SegmentEval {
        duration_s: duration,
        dollars,
        breakdown: b,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampsinf_model::zoo;

    fn defaults() -> (Quotas, PriceSheet, PerfModel) {
        (
            Quotas::lambda_2020(),
            PriceSheet::aws_2020(),
            PerfModel::default(),
        )
    }

    #[test]
    fn profile_prefix_sums_match_graph_segments() {
        let g = zoo::mobilenet_v1();
        let p = Profile::of(&g);
        for (s, e) in [(0usize, 10usize), (5, 40), (0, g.num_layers() - 1)] {
            let seg = g.segment(s, e);
            assert_eq!(p.weights(s, e), seg.weight_bytes);
            assert_eq!(p.flops(s, e), seg.flops);
            assert_eq!(p.activations(s, e), seg.activation_bytes);
            assert_eq!(p.input_bytes(s), seg.input_bytes);
            assert_eq!(p.output_bytes(e), seg.output_bytes);
        }
    }

    #[test]
    fn deployment_constraint_detects_oversized_segments() {
        let (q, _, _) = defaults();
        let g = zoo::resnet50();
        let p = Profile::of(&g);
        // Whole ResNet50 exceeds 250 MB; a thin slice does not.
        assert!(!p.fits_deployment(0, g.num_layers() - 1, &q));
        assert!(p.fits_deployment(0, 20, &q));
    }

    #[test]
    fn memory_floor_monotone_in_segment_size() {
        let (q, _, perf) = defaults();
        let g = zoo::resnet50();
        let p = Profile::of(&g);
        let small = p.memory_floor(0, 10, &q, &perf).unwrap();
        let large = p.memory_floor(0, 120, &q, &perf).unwrap();
        assert!(large >= small);
        assert!(q.is_valid_memory(small));
    }

    #[test]
    fn feasible_memories_filtered_by_floor() {
        let (q, _, perf) = defaults();
        let g = zoo::mobilenet_v1();
        let p = Profile::of(&g);
        let mems = p.feasible_memories(0, g.num_layers() - 1, &q, &perf);
        assert!(!mems.is_empty());
        assert!(
            mems[0] >= 256,
            "floor should exclude 128 MB: {:?}",
            &mems[..2]
        );
        assert_eq!(*mems.last().unwrap(), 3008);
    }

    #[test]
    fn evaluate_matches_platform_duration_shape() {
        let (q, pr, pe) = defaults();
        let g = zoo::mobilenet_v1();
        let n = g.num_layers();
        let e512 =
            evaluate_segment(&g, 0, n - 1, 512, &q, &pr, &pe, StoreKind::s3(), true, true).unwrap();
        let e1024 = evaluate_segment(
            &g,
            0,
            n - 1,
            1024,
            &q,
            &pr,
            &pe,
            StoreKind::s3(),
            true,
            true,
        )
        .unwrap();
        let e3008 = evaluate_segment(
            &g,
            0,
            n - 1,
            3008,
            &q,
            &pr,
            &pe,
            StoreKind::s3(),
            true,
            true,
        )
        .unwrap();
        assert!(e512.duration_s > e1024.duration_s);
        assert!(e1024.duration_s > e3008.duration_s);
        // Table 2 cost shape: 3008 is the most expensive.
        assert!(e3008.dollars > e1024.dollars);
    }

    #[test]
    fn evaluate_rejects_oversized_deployment() {
        let (q, pr, pe) = defaults();
        let g = zoo::resnet50();
        let err = evaluate_segment(
            &g,
            0,
            g.num_layers() - 1,
            3008,
            &q,
            &pr,
            &pe,
            StoreKind::s3(),
            true,
            true,
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::Deploy(_)));
    }

    #[test]
    fn middle_segment_pays_transfers() {
        let (q, pr, pe) = defaults();
        let g = zoo::resnet50();
        let mid = evaluate_segment(
            &g,
            50,
            100,
            1024,
            &q,
            &pr,
            &pe,
            StoreKind::s3(),
            false,
            false,
        )
        .unwrap();
        assert!(mid.breakdown.transfer_s > 0.0);
        let solo =
            evaluate_segment(&g, 50, 100, 1024, &q, &pr, &pe, StoreKind::s3(), true, true).unwrap();
        assert!(solo.breakdown.transfer_s < mid.breakdown.transfer_s);
    }

    #[test]
    fn quantized_profile_halves_weights_keeps_transfers() {
        let g = zoo::mobilenet_v1();
        let q = g.quantized(2);
        let p32 = Profile::of(&g);
        let p16 = Profile::of(&q);
        let n = g.num_layers();
        assert_eq!(p16.weights(0, n - 1) * 2, p32.weights(0, n - 1));
        assert_eq!(p16.boundary_bytes, p32.boundary_bytes);
        assert_eq!(p16.flops(0, n - 1), p32.flops(0, n - 1));
        // Quantization can only relax the deployment constraint.
        let (quotas, _, _) = defaults();
        for end in [20usize, 50, n - 1] {
            if p32.fits_deployment(0, end, &quotas) {
                assert!(p16.fits_deployment(0, end, &quotas));
            }
        }
    }

    #[test]
    fn batched_profile_scales_compute_not_weights() {
        let g = zoo::mobilenet_v1();
        let p1 = Profile::of(&g);
        let p10 = Profile::batched(&g, 10);
        let n = g.num_layers();
        assert_eq!(p10.flops(0, n - 1), 10 * p1.flops(0, n - 1));
        assert_eq!(p10.weights(0, n - 1), p1.weights(0, n - 1));
        assert_eq!(p10.boundary_bytes[5], 10 * p1.boundary_bytes[5]);
        // Bigger batches push the memory floor up (more resident data).
        let (q, _, perf) = defaults();
        let f1 = p1.memory_floor(0, n - 1, &q, &perf).unwrap();
        let f10 = p10.memory_floor(0, n - 1, &q, &perf).unwrap();
        assert!(f10 >= f1);
    }

    #[test]
    fn batched_unique_dedupes_and_keeps_order() {
        let g = zoo::mobilenet_v1();
        let profs = batched_unique(&g, &[8, 1, 8, 32, 1]);
        assert_eq!(
            profs.iter().map(|(b, _)| *b).collect::<Vec<_>>(),
            vec![8, 1, 32]
        );
        let n = g.num_layers();
        let direct = Profile::batched(&g, 8);
        assert_eq!(profs[0].1.flops(0, n - 1), direct.flops(0, n - 1));
        assert_eq!(profs[0].1.boundary_bytes, direct.boundary_bytes);
    }

    #[test]
    fn quick_eval_equals_platform() {
        // The optimizer objective must equal simulator behaviour exactly.
        let (q, pr, pe) = defaults();
        for g in [zoo::mobilenet_v1(), zoo::resnet50()] {
            let prof = Profile::of(&g);
            let n = g.num_layers();
            let cases = [
                (0usize, n / 3, true, false),
                (n / 3 + 1, 2 * n / 3, false, false),
                (2 * n / 3 + 1, n - 1, false, true),
            ];
            for (s, e, first, last) in cases {
                for mem in [512u32, 1024, 2048, 3008] {
                    let quick = quick_eval(
                        &prof,
                        s,
                        e,
                        mem,
                        &q,
                        &pr,
                        &pe,
                        &StoreKind::s3(),
                        first,
                        last,
                    );
                    let full =
                        evaluate_segment(&g, s, e, mem, &q, &pr, &pe, StoreKind::s3(), first, last);
                    match (quick, full) {
                        (Ok(a), Ok(b)) => {
                            assert!(
                                (a.duration_s - b.duration_s).abs() < 1e-9,
                                "{} [{s},{e}]@{mem}: {} vs {}",
                                g.name,
                                a.duration_s,
                                b.duration_s
                            );
                            assert!((a.dollars - b.dollars).abs() < 1e-12);
                        }
                        (Err(_), Err(_)) => {}
                        (a, b) => panic!("{} [{s},{e}]@{mem}: {a:?} vs {b:?}", g.name),
                    }
                }
            }
        }
    }

    #[test]
    fn quick_eval_node_matches_quick_eval_on_chain() {
        // A chain-shaped node (one read, one write, chain cut bytes) must
        // be bit-equal to the chain evaluator — the degenerate-DAG
        // invariant the serving engines rely on.
        let (q, pr, pe) = defaults();
        let g = zoo::resnet50();
        let prof = Profile::of(&g);
        let n = g.num_layers();
        let s3 = StoreKind::s3();
        for (s, e, first, last) in [
            (0usize, n / 3, true, false),
            (n / 3 + 1, 2 * n / 3, false, false),
            (2 * n / 3 + 1, n - 1, false, true),
        ] {
            for mem in [1024u32, 2048] {
                let reads: Vec<u64> = if first {
                    vec![]
                } else {
                    vec![prof.input_bytes(s)]
                };
                let writes: Vec<u64> = if last {
                    vec![]
                } else {
                    vec![prof.output_bytes(e)]
                };
                let node = quick_eval_node(&prof, s, e, mem, &q, &pr, &pe, &s3, &reads, &writes);
                let chain = quick_eval(&prof, s, e, mem, &q, &pr, &pe, &s3, first, last);
                match (node, chain) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.duration_s.to_bits(), b.duration_s.to_bits());
                        assert_eq!(a.dollars.to_bits(), b.dollars.to_bits());
                    }
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!("[{s},{e}]@{mem}: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn quick_eval_node_bills_each_object() {
        // A gather node reading k objects pays k GET fees and k request
        // latencies; splitting one read into two of the same total bytes
        // adds exactly one latency + one fee.
        let (q, pr, pe) = defaults();
        let g = zoo::mobilenet_v1();
        let prof = Profile::of(&g);
        let s3 = StoreKind::s3();
        let one = quick_eval_node(
            &prof,
            20,
            40,
            1024,
            &q,
            &pr,
            &pe,
            &s3,
            &[1_000_000],
            &[500_000],
        )
        .unwrap();
        let two = quick_eval_node(
            &prof,
            20,
            40,
            1024,
            &q,
            &pr,
            &pe,
            &s3,
            &[600_000, 400_000],
            &[500_000],
        )
        .unwrap();
        assert!(
            (two.breakdown.transfer_s - one.breakdown.transfer_s - s3.request_latency_s).abs()
                < 1e-12
        );
        let fee_delta = two.dollars - one.dollars;
        let expect = pr.s3_get_request
            + (pr.lambda_compute_cost(two.duration_s, 1024)
                - pr.lambda_compute_cost(one.duration_s, 1024));
        assert!((fee_delta - expect).abs() < 1e-15);
    }

    #[test]
    fn fast_store_reduces_transfer_time() {
        let (q, pr, pe) = defaults();
        let g = zoo::resnet50();
        let s3 = evaluate_segment(
            &g,
            30,
            90,
            1024,
            &q,
            &pr,
            &pe,
            StoreKind::s3(),
            false,
            false,
        )
        .unwrap();
        let fast = evaluate_segment(
            &g,
            30,
            90,
            1024,
            &q,
            &pr,
            &pe,
            StoreKind::fast_store(),
            false,
            false,
        )
        .unwrap();
        assert!(fast.breakdown.transfer_s < s3.breakdown.transfer_s);
        assert!(fast.duration_s < s3.duration_s);
    }
}
