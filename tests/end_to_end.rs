//! Cross-crate integration tests: the full AMPS-Inf pipeline from model
//! file to served prediction, for every evaluation model.

use amps_inf::core::baselines;
use amps_inf::core::optimizer::OptimizeError;
use amps_inf::prelude::*;

/// Optimize → deploy → serve for every §5 evaluation model; predictions
/// (the optimizer's objective) must equal platform measurements exactly,
/// and every plan must respect every platform limit by construction.
#[test]
fn full_pipeline_every_evaluation_model() {
    for g in zoo::evaluation_models() {
        let cfg = AmpsConfig::default();
        let report = Optimizer::new(cfg.clone())
            .optimize(&g)
            .unwrap_or_else(|e| panic!("{}: {e}", g.name));
        let plan = &report.plan;
        plan.validate(g.num_layers()).unwrap();

        let coord = Coordinator::new(cfg);
        let mut platform = coord.platform();
        let dep = coord.deploy(&mut platform, &g, plan).expect("deployable");
        let job = coord
            .serve_one(&mut platform, &dep, 0.0, "e2e")
            .expect("serves");

        assert!(
            (job.inference_s - plan.predicted_time_s).abs() < 1e-6,
            "{}: measured {} vs predicted {}",
            g.name,
            job.inference_s,
            plan.predicted_time_s
        );
        assert!(
            (job.dollars - plan.predicted_cost).abs() < 1e-9,
            "{}: cost mismatch",
            g.name
        );
    }
}

/// The model-file (JSON) route: serialize → parse → optimize gives the
/// same plan as the in-memory graph (the paper's YAML/JSON input path).
#[test]
fn model_file_round_trip_preserves_plan() {
    let g = zoo::mobilenet_v1();
    let json = amps_inf::model::serialize::to_json(&g);
    let parsed = amps_inf::model::serialize::from_json(&json).unwrap();
    let cfg = AmpsConfig::default();
    let a = Optimizer::new(cfg.clone()).optimize(&g).unwrap().plan;
    let b = Optimizer::new(cfg).optimize(&parsed).unwrap().plan;
    assert_eq!(a.bounds(), b.bounds());
    assert_eq!(a.memories(), b.memories());
}

/// AMPS-Inf vs the paper's three baselines: B3 cheapest, AMPS within
/// tolerance of B3 and at least as fast, heuristics strictly worse.
#[test]
fn optimizer_dominates_heuristics() {
    let g = zoo::inception_v3();
    let cfg = AmpsConfig::default();
    let amps = Optimizer::new(cfg.clone()).optimize(&g).unwrap().plan;
    let b1 = baselines::b1_random(&g, &cfg, 11).unwrap();
    let b2 = baselines::b2_greedy_max(&g, &cfg).unwrap();
    let b3 = baselines::b3_optimal(&g, &cfg).unwrap();
    assert!(amps.predicted_cost <= b1.predicted_cost);
    assert!(amps.predicted_cost <= b2.predicted_cost);
    assert!(b3.predicted_cost <= amps.predicted_cost + 1e-12);
    assert!(amps.predicted_cost <= b3.predicted_cost * 1.25);
}

/// Platform limits propagate: no returned plan ever deploys a partition
/// that the platform would reject, across all models and quota presets.
#[test]
fn plans_always_deployable_under_both_quota_presets() {
    for cfg in [AmpsConfig::default(), AmpsConfig::default().lambda_2021()] {
        for g in [zoo::mobilenet_v1(), zoo::resnet50()] {
            let plan = Optimizer::new(cfg.clone()).optimize(&g).unwrap().plan;
            let coord = Coordinator::new(cfg.clone());
            let mut platform = coord.platform();
            assert!(
                coord.deploy(&mut platform, &g, &plan).is_ok(),
                "{} under {:?} MB max",
                g.name,
                cfg.quotas.memory_max_mb
            );
        }
    }
}

/// The 2021 quota regime (10 GB, 1 MB steps) can only improve plans:
/// strictly more memory options.
#[test]
fn quota_2021_no_worse_than_2020() {
    let g = zoo::resnet50();
    let p2020 = Optimizer::new(AmpsConfig::default())
        .optimize(&g)
        .unwrap()
        .plan;
    let p2021 = Optimizer::new(AmpsConfig {
        cost_tolerance: 0.0,
        ..AmpsConfig::default().lambda_2021()
    })
    .optimize(&g)
    .unwrap()
    .plan;
    // Pure-cost 2021 optimum ≤ tolerance-spending 2020 plan's cost.
    assert!(p2021.predicted_cost <= p2020.predicted_cost * 1.001);
}

/// Infeasible SLOs are reported, feasible ones are honored and monotone:
/// tighter SLO ⇒ never cheaper.
#[test]
fn slo_monotonicity() {
    let g = zoo::xception();
    // Reference: the pure cost optimum's completion time (tolerance 0).
    let base_cfg = AmpsConfig {
        cost_tolerance: 0.0,
        ..Default::default()
    };
    let free = Optimizer::new(base_cfg.clone()).optimize(&g).unwrap().plan;
    let mut last_cost = 0.0;
    let mut became_infeasible = false;
    for factor in [1.5, 1.2, 1.0, 0.85, 0.7, 0.5] {
        let cfg = base_cfg.clone().with_slo(free.predicted_time_s * factor);
        match Optimizer::new(cfg).optimize(&g) {
            Ok(r) => {
                assert!(
                    !became_infeasible,
                    "feasibility must be monotone in the SLO"
                );
                assert!(r.plan.predicted_time_s <= free.predicted_time_s * factor + 1e-9);
                assert!(
                    r.plan.predicted_cost >= last_cost - 1e-12,
                    "cost must not drop as SLO tightens"
                );
                last_cost = r.plan.predicted_cost;
            }
            Err(OptimizeError::SloInfeasible) => became_infeasible = true,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    // Absurd SLO → explicit error.
    let err = Optimizer::new(AmpsConfig::default().with_slo(0.0001))
        .optimize(&g)
        .unwrap_err();
    assert_eq!(err, OptimizeError::SloInfeasible);
}

/// Failure injection: deleting an intermediate object mid-chain surfaces
/// as a MissingInput invocation error, not silent corruption.
#[test]
fn storage_failure_injection() {
    let g = zoo::resnet50();
    let cfg = AmpsConfig::default();
    let plan = Optimizer::new(cfg.clone()).optimize(&g).unwrap().plan;
    assert!(plan.num_lambdas() >= 2);
    let coord = Coordinator::new(cfg);
    let mut platform = coord.platform();
    let dep = coord.deploy(&mut platform, &g, &plan).unwrap();

    // Run the first partition manually, then sabotage its output.
    let sab = platform.store.intern("sab/b0");
    let w0 = dep.works[0].invocation(None, Some(sab));
    let o0 = platform.invoke(dep.functions[0], 0.0, &w0).unwrap();
    platform.store.delete("sab/b0", o0.end);
    let w1 = dep.works[1].invocation(Some(sab), None);
    let err = platform.invoke(dep.functions[1], o0.end, &w1).unwrap_err();
    assert!(matches!(
        err.reason,
        amps_inf::faas::platform::InvokeError::MissingInput(_)
    ));
    // The doomed invocation still ran its cold phases — real Lambda bills
    // that consumed time.
    assert!(err.duration() > 0.0);
    assert!(err.dollars > 0.0);
}

/// Transient storage failures: moderate flakiness is absorbed by client
/// retries (requests succeed, just slower); extreme flakiness surfaces as
/// an explicit StorageUnavailable error instead of silent corruption.
#[test]
fn flaky_storage_retries_then_fails_cleanly() {
    use amps_inf::faas::platform::InvokeError;
    use amps_inf::faas::StoreKind;

    let g = zoo::resnet50();
    // Moderate flakiness: 20% per request, 3 retries → P(all fail) = 0.16%.
    let cfg = AmpsConfig {
        store: StoreKind::flaky_s3(0.2),
        ..Default::default()
    };
    let plan = Optimizer::new(cfg.clone()).optimize(&g).unwrap().plan;
    assert!(plan.num_lambdas() >= 2);
    let coord = Coordinator::new(cfg);
    let mut platform = coord.platform();
    let dep = coord.deploy(&mut platform, &g, &plan).unwrap();
    for r in 0..5 {
        let job = coord
            .serve_one(&mut platform, &dep, r as f64 * 100.0, &format!("fk{r}"))
            .expect("moderate flakiness is retried away");
        assert!(job.inference_s > 0.0);
    }

    // Extreme flakiness: 90% per request → retries exhaust quickly.
    // Chain-level retries are disabled so the raw storage failure mode
    // surfaces (with them on, the coordinator would just keep retrying).
    let cfg = AmpsConfig {
        store: StoreKind::flaky_s3(0.9),
        invoke_retries: 0,
        ..Default::default()
    };
    let coord = Coordinator::new(cfg);
    let mut platform = coord.platform();
    let dep = coord.deploy(&mut platform, &g, &plan).unwrap();
    let mut saw_unavailable = false;
    for r in 0..5 {
        match coord.serve_one(&mut platform, &dep, r as f64 * 100.0, &format!("xk{r}")) {
            Ok(_) => {}
            Err(e) if matches!(e.reason, InvokeError::StorageUnavailable(_)) => {
                // Even the doomed request billed its consumed time.
                assert!(e.dollars > 0.0);
                saw_unavailable = true;
                break;
            }
            Err(e) => panic!("unexpected failure mode: {e}"),
        }
    }
    assert!(saw_unavailable, "90% flakiness must surface as Unavailable");
}

/// An un-splittable model (single giant layer beyond the deployment cap)
/// is reported as NoFeasibleCut — the paper's §5.4 future-work case.
#[test]
fn giant_single_layer_reported_infeasible() {
    use amps_inf::model::{LayerGraph, LayerOp, TensorShape};
    let mut g = LayerGraph::new("giant");
    let i = g.add(
        "input",
        LayerOp::Input {
            shape: TensorShape::Flat(16384),
        },
        &[],
    );
    // 16384 × 8192 weights ≈ 512 MB for this single Dense layer.
    g.add(
        "dense",
        LayerOp::Dense {
            units: 8192,
            use_bias: true,
            activation: amps_inf::model::Activation::Linear,
        },
        &[i],
    );
    let err = Optimizer::new(AmpsConfig::default())
        .optimize(&g)
        .unwrap_err();
    assert_eq!(err, OptimizeError::NoFeasibleCut);
}
