//! Smoke tests for the `ampsinf` CLI binary.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_ampsinf"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn models_lists_zoo() {
    let (stdout, _, ok) = run(&["models"]);
    assert!(ok);
    for name in [
        "mobilenet",
        "resnet50",
        "inception_v3",
        "xception",
        "bert_base",
    ] {
        assert!(stdout.contains(name), "missing {name}:\n{stdout}");
    }
    assert!(stdout.contains("25636712")); // ResNet50 params, exact
}

#[test]
fn summary_renders() {
    let (stdout, _, ok) = run(&["summary", "mobilenet"]);
    assert!(ok);
    assert!(stdout.contains("Total params: 4253864"));
    assert!(stdout.contains("conv_dw_1 (DepthwiseConv2D)"));
}

#[test]
fn plan_mobilenet_and_json_output() {
    let dir = std::env::temp_dir().join("ampsinf-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let json = dir.join("plan.json");
    let json_str = json.to_str().unwrap();
    let (stdout, stderr, ok) = run(&["plan", "mobilenet", "--json", json_str]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("lambda(s)"), "{stdout}");
    assert!(stdout.contains("exhaustive optimum"), "{stdout}");
    let plan =
        amps_inf::core::ExecutionPlan::from_json(&std::fs::read_to_string(&json).unwrap()).unwrap();
    assert_eq!(plan.model, "mobilenet");
    assert!(plan.num_lambdas() >= 1);
}

#[test]
fn plan_with_quantization() {
    let (stdout, _, ok) = run(&["plan", "bert_base", "--quantize", "1"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("quantized weights to 8 bits"));
    assert!(stdout.contains("lambda(s)"));
}

#[test]
fn serve_runs_end_to_end() {
    let (stdout, stderr, ok) = run(&["serve", "mobilenet", "--images", "2"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("2 image(s)"), "{stdout}");
    assert!(stdout.contains('$'));
}

#[test]
fn unknown_model_fails_cleanly() {
    let (_, stderr, ok) = run(&["plan", "alexnet-9000"]);
    assert!(!ok);
    assert!(stderr.contains("unknown model"));
}

#[test]
fn bad_flag_value_fails_cleanly() {
    let (_, stderr, ok) = run(&["plan", "mobilenet", "--slo", "banana"]);
    assert!(!ok);
    assert!(stderr.contains("bad --slo"));
}

#[test]
fn no_args_prints_usage() {
    let (_, stderr, ok) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
}

#[test]
fn model_file_round_trip_through_cli() {
    // Serialize a zoo model to a file and plan from the file.
    let g = amps_inf::model::zoo::tiny_cnn();
    let dir = std::env::temp_dir().join("ampsinf-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tiny.json");
    std::fs::write(&path, amps_inf::model::serialize::to_json(&g)).unwrap();
    let (stdout, stderr, ok) = run(&["plan", path.to_str().unwrap()]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("tiny_cnn"));
}

#[test]
fn images_flag_rejects_garbage() {
    // Regression: malformed --images used to silently fall back to 1.
    for bad in ["banana", "0", "-3", "1.5"] {
        let (_, stderr, ok) = run(&["serve", "mobilenet", "--images", bad]);
        assert!(!ok, "--images {bad} should fail");
        assert!(stderr.contains("bad --images"), "{stderr}");
    }
}

#[test]
fn sweep_prints_frontier_table() {
    let (stdout, stderr, ok) = run(&[
        "sweep",
        "mobilenet",
        "--slo-from",
        "2",
        "--slo-to",
        "20",
        "--points",
        "4",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("sweep: 4 point(s)"), "{stdout}");
    assert!(
        stdout.contains("pareto") || stdout.contains("knee"),
        "{stdout}"
    );
    assert!(stdout.contains("cache hits"), "{stdout}");
    assert!(stdout.contains("bound-seeded"), "{stdout}");
}

#[test]
fn dag_sweep_prints_chain_vs_dag_table() {
    let (stdout, stderr, ok) = run(&[
        "sweep",
        "inception_v3",
        "--dag",
        "--slo-from",
        "22",
        "--slo-to",
        "40",
        "--points",
        "3",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("dag sweep: 3 point(s)"), "{stdout}");
    assert!(stdout.contains("chain($)"), "{stdout}");
    assert!(
        stdout.contains("pareto") || stdout.contains("knee"),
        "{stdout}"
    );
    assert!(stdout.contains("dag memos:"), "{stdout}");
}

#[test]
fn dag_sweep_shares_grid_validation_with_chain_sweep() {
    let (_, stderr, ok) = run(&["sweep", "inception_v3", "--dag"]);
    assert!(!ok);
    assert!(stderr.contains("requires --slo-from"), "{stderr}");
}

#[test]
fn sweep_requires_grid_flags() {
    let (_, stderr, ok) = run(&["sweep", "mobilenet"]);
    assert!(!ok);
    assert!(stderr.contains("requires --slo-from"), "{stderr}");
    let (_, stderr, ok) = run(&["sweep", "mobilenet", "--slo-from", "2", "--slo-to", "20"]);
    assert!(!ok);
    assert!(stderr.contains("requires --points"), "{stderr}");
}

#[test]
fn sweep_rejects_bad_grid_values() {
    let (_, stderr, ok) = run(&[
        "sweep",
        "mobilenet",
        "--slo-from",
        "20",
        "--slo-to",
        "2",
        "--points",
        "4",
    ]);
    assert!(!ok);
    assert!(stderr.contains("bad --slo-to"), "{stderr}");
    let (_, stderr, ok) = run(&[
        "sweep",
        "mobilenet",
        "--slo-from",
        "2",
        "--slo-to",
        "20",
        "--points",
        "4",
        "--batches",
        "1,zero",
    ]);
    assert!(!ok);
    assert!(stderr.contains("bad --batches"), "{stderr}");
}
