//! Quickstart: optimize, deploy and serve ResNet50 — the paper's headline
//! model (98 MB of weights, 267 MB deployment > the 250 MB Lambda limit).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use amps_inf::prelude::*;

fn main() {
    // 1. A pre-trained model. The zoo rebuilds the exact Keras
    //    architecture: 25,636,712 parameters, 177 layers.
    let model = zoo::resnet50();
    println!(
        "model {}: {} layers, {:.1} MB of weights, {:.2} GFLOPs/image",
        model.name,
        model.num_layers(),
        model.weight_bytes() as f64 / 1024.0 / 1024.0,
        model.total_flops() as f64 / 1e9
    );

    // 2. Optimize partitioning + memory provisioning (the paper's MIQP).
    let cfg = AmpsConfig::default();
    let report = Optimizer::new(cfg.clone())
        .optimize(&model)
        .expect("ResNet50 is partitionable");
    println!("\noptimizer: {}", report.plan);
    println!(
        "  searched {} cuts, solved {} MIQPs in {:?}",
        report.cuts_considered, report.miqps_solved, report.solve_time
    );

    // 3. Deploy on the simulated AWS Lambda platform and serve one image.
    let coordinator = Coordinator::new(cfg);
    let mut platform = coordinator.platform();
    let deployment = coordinator
        .deploy(&mut platform, &model, &report.plan)
        .expect("plan satisfies all quotas");
    let job = coordinator
        .serve_one(&mut platform, &deployment, 0.0, "req-0")
        .expect("chain executes");

    println!("\nserved one image:");
    println!("  deployment    {:>8.2} s (once per job)", job.deploy_s);
    println!("  load+import   {:>8.2} s (sum over lambdas)", job.load_s);
    println!(
        "  prediction    {:>8.2} s (sum over lambdas)",
        job.predict_s
    );
    println!("  chain wall    {:>8.2} s", job.inference_s);
    println!("  end-to-end    {:>8.2} s", job.e2e_s);
    println!("  cost          ${:.6}", job.dollars);

    for (i, o) in job.outcomes.iter().enumerate() {
        let p = &report.plan.partitions[i];
        println!(
            "    lambda {i}: layers {:>3}..{:>3} @{:>4} MB  {:>6.2} s  ${:.6}",
            p.start,
            p.end,
            p.memory_mb,
            o.duration(),
            o.dollars
        );
    }

    // 4. Where did the time go? (the paper's Fig. 5/6 decomposition)
    println!(
        "\n{}",
        amps_inf::core::Timeline::of(&report.plan, &job).render(72)
    );
}
