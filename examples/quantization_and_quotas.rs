//! The paper's extension scenarios (§5.1 / §7 future work):
//!
//! 1. **Weight quantization pre-pass** — "it may be possible that even a
//!    single layer is too large to fit into a lambda function ... we will
//!    consider automatically quantizing the weights before the deployment".
//!    We build a BERT-ish giant-dense model whose single largest layer
//!    exceeds the deployment cap at float32, watch the optimizer refuse,
//!    and then plan successfully at fp16/int8.
//! 2. **The post-2020 quota regime** — 10,240 MB in 1 MB steps: same
//!    optimizer, wider grid, never-worse plans.
//!
//! ```text
//! cargo run --release --example quantization_and_quotas
//! ```

use amps_inf::core::optimizer::OptimizeError;
use amps_inf::model::{Activation, LayerGraph, LayerOp, TensorShape};
use amps_inf::prelude::*;

/// A transformer-ish classifier whose embedding layer alone is ~120 MB and
/// whose total is ~480 MB at float32.
fn giant_model() -> LayerGraph {
    let mut g = LayerGraph::new("giant-bert-ish");
    let hidden = 1024u32;
    let inp = g.add(
        "input",
        LayerOp::Input {
            shape: TensorShape::Flat(hidden),
        },
        &[],
    );
    // Embedding-like giant layer: 30k vocab × 1024 ≈ 30.7M params ≈ 123 MB.
    let mut x = g.add(
        "embed_proj",
        LayerOp::Dense {
            units: 30_000,
            use_bias: false,
            activation: Activation::Linear,
        },
        &[inp],
    );
    x = g.add(
        "vocab_pool",
        LayerOp::Dense {
            units: hidden,
            use_bias: true,
            activation: Activation::Relu,
        },
        &[x],
    );
    for l in 0..24 {
        // Feed-forward blocks: 1024 → 4096 → 1024 ≈ 8.4M params each.
        let up = g.add(
            format!("ffn{l}_up"),
            LayerOp::Dense {
                units: 4 * hidden,
                use_bias: true,
                activation: Activation::Relu,
            },
            &[x],
        );
        x = g.add(
            format!("ffn{l}_down"),
            LayerOp::Dense {
                units: hidden,
                use_bias: true,
                activation: Activation::Linear,
            },
            &[up],
        );
    }
    g.add(
        "classifier",
        LayerOp::Dense {
            units: 1000,
            use_bias: true,
            activation: Activation::Softmax,
        },
        &[x],
    );
    g
}

fn main() {
    let g32 = giant_model();
    println!(
        "{}: {:.0} M params, {:.0} MB at float32",
        g32.name,
        g32.total_params() as f64 / 1e6,
        g32.weight_bytes() as f64 / 1024.0 / 1024.0
    );

    println!("\n-- quantization pre-pass --");
    for (label, g) in [
        ("float32", g32.clone()),
        ("fp16", g32.quantized(2)),
        ("int8", g32.quantized(1)),
    ] {
        match Optimizer::new(AmpsConfig::default()).optimize(&g) {
            Ok(r) => println!(
                "{label:>8}: {} lambdas, {:.2} s, ${:.6}  {:?} MB",
                r.plan.num_lambdas(),
                r.plan.predicted_time_s,
                r.plan.predicted_cost,
                r.plan.memories()
            ),
            Err(OptimizeError::NoFeasibleCut) => println!(
                "{label:>8}: infeasible — some partition cannot fit the 250 MB deployment cap"
            ),
            Err(e) => println!("{label:>8}: {e}"),
        }
    }

    println!("\n-- quota regimes (ResNet50, pure cost objective) --");
    let rn = zoo::resnet50();
    for (label, cfg) in [
        (
            "2020 (64 MB steps, ≤3008)",
            AmpsConfig {
                cost_tolerance: 0.0,
                ..Default::default()
            },
        ),
        (
            "2021 (1 MB steps, ≤10240)",
            AmpsConfig {
                cost_tolerance: 0.0,
                ..AmpsConfig::default().lambda_2021()
            },
        ),
    ] {
        let r = Optimizer::new(cfg).optimize(&rn).unwrap();
        println!(
            "{label:>28}: {:.2} s, ${:.6}  {:?} MB",
            r.plan.predicted_time_s,
            r.plan.predicted_cost,
            r.plan.memories()
        );
    }
    println!(
        "\nThe wider 2021 grid can only tighten the optimum (it is a superset\n\
         of the 2020 blocks up to thinning) — the extension the paper's §5.1\n\
         leaves as future work."
    );
}
