//! SLO-aware planning: how the response-time requirement reshapes the
//! plan — the scenario the paper's §1 motivates ("minimizing the billing
//! cost without violating a pre-defined SLO").
//!
//! Sweeps the SLO for Inception-V3 and prints the cost/latency frontier
//! the MIQP traces out: tight SLOs buy bigger memory blocks; loose SLOs
//! converge to the cost optimum.
//!
//! ```text
//! cargo run --release --example slo_planning
//! ```

use amps_inf::core::optimizer::OptimizeError;
use amps_inf::prelude::*;

fn main() {
    let model = zoo::inception_v3();
    println!(
        "SLO frontier for {} ({:.1} MB weights)\n",
        model.name,
        model.weight_bytes() as f64 / 1024.0 / 1024.0
    );

    // Establish the unconstrained cost optimum first.
    let free = Optimizer::new(AmpsConfig {
        cost_tolerance: 0.0,
        ..Default::default()
    })
    .optimize(&model)
    .expect("feasible without SLO");
    println!(
        "unconstrained cost optimum: {:.2} s, ${:.6}  {:?} MB\n",
        free.plan.predicted_time_s,
        free.plan.predicted_cost,
        free.plan.memories()
    );

    println!(
        "{:>8}  {:>9}  {:>10}  {:>4}  memories",
        "SLO (s)", "time (s)", "cost ($)", "k"
    );
    let base = free.plan.predicted_time_s;
    for factor in [1.5, 1.2, 1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.3] {
        let slo = base * factor;
        let cfg = AmpsConfig {
            cost_tolerance: 0.0,
            ..Default::default()
        }
        .with_slo(slo);
        match Optimizer::new(cfg).optimize(&model) {
            Ok(r) => println!(
                "{:>8.2}  {:>9.2}  {:>10.6}  {:>4}  {:?}",
                slo,
                r.plan.predicted_time_s,
                r.plan.predicted_cost,
                r.plan.num_lambdas(),
                r.plan.memories()
            ),
            Err(OptimizeError::SloInfeasible) => {
                println!(
                    "{slo:>8.2}  {:>9}  {:>10}  infeasible — no memory mix is this fast",
                    "-", "-"
                );
            }
            Err(e) => println!("{slo:>8.2}  error: {e}"),
        }
    }

    println!(
        "\nReading the frontier: tighter SLOs force larger memory blocks\n\
         (more CPU share per lambda) and strictly higher cost — the\n\
         trade-off the paper's Eq. (3)-(8) formalize."
    );
}
