//! Query-load dynamics: the serverless elasticity story the paper's §2
//! leans on. Runs open-loop Poisson workloads at increasing arrival rates
//! over an optimized Xception chain and reports latency percentiles,
//! cold-start behaviour and cost per request.
//!
//! ```text
//! cargo run --release --example load_dynamics
//! ```

use amps_inf::prelude::*;
use amps_inf::serving::loadgen::{run_open_loop, LoadSpec};

fn main() {
    let model = zoo::xception();
    let cfg = AmpsConfig::default();
    let plan = Optimizer::new(cfg.clone())
        .optimize(&model)
        .expect("Xception optimizes")
        .plan;
    println!("plan: {plan}\n");

    println!(
        "{:>9} {:>6} {:>9} {:>9} {:>9} {:>7} {:>9} {:>11}",
        "rate(rps)", "reqs", "p50 (s)", "p95 (s)", "max (s)", "cold", "peak inst", "$/request"
    );
    for rate in [0.01, 0.05, 0.2, 1.0, 5.0] {
        let load = LoadSpec::poisson(rate, 30, 7);
        let r = run_open_loop(&model, &plan, &cfg, &load).expect("load run");
        println!(
            "{:>9.2} {:>6} {:>9.2} {:>9.2} {:>9.2} {:>7} {:>9} {:>11.6}",
            rate,
            load.requests,
            r.percentile(50.0),
            r.percentile(95.0),
            r.percentile(100.0),
            r.cold_starts,
            r.peak_instances,
            r.dollars / load.requests as f64
        );
    }

    println!(
        "\nReading the sweep: slow trickles reuse warm containers (low p50,\n\
         cold starts ≈ number of partitions); bursts fan out across fresh\n\
         instances — every request pays the cold path, but none queues.\n\
         Cost per request stays flat: the pay-per-use property that drives\n\
         the paper's cost comparisons."
    );
}
