//! Batch inference (paper §5.4): serving many images through a
//! partitioned model, sequentially (AMPS-Inf-Seq, the BATCH-comparable
//! mode) and in parallel.
//!
//! ```text
//! cargo run --release --example batch_serving
//! ```

use amps_inf::prelude::*;
use amps_inf::serving::batch_baseline::run_batch_baseline;
use amps_inf::serving::batched::run_batched_plan;

fn main() {
    let model = zoo::mobilenet_v1();
    // The paper's Fig. 13 workload: 100 images as 10 batches of 10 —
    // AMPS-Inf plans *for the batch* (the paper's batch configuration used
    // larger blocks: 2048/2176 MB), not for a single image.
    let (batch, batches) = (10u64, 10usize);
    let cfg = AmpsConfig::default().with_batch(batch);
    let plan = Optimizer::new(cfg.clone())
        .optimize(&model)
        .expect("MobileNet optimizes")
        .plan;
    println!("plan (batch-aware): {plan}\n");
    println!(
        "workload: {} images as {} batches of {}\n",
        batch as usize * batches,
        batches,
        batch
    );

    let batch_sys =
        run_batch_baseline(&model, &cfg, 2048, batch, batches).expect("MobileNet fits one lambda");
    let seq = run_batched_plan(&model, &plan, &cfg, batch, batches, false).unwrap();
    let par = run_batched_plan(&model, &plan, &cfg, batch, batches, true).unwrap();

    println!("{:<22} {:>12} {:>12}", "system", "time (s)", "cost ($)");
    println!(
        "{:<22} {:>12.2} {:>12.5}",
        "BATCH [23] (1 lambda)", batch_sys.completion_s, batch_sys.dollars
    );
    println!(
        "{:<22} {:>12.2} {:>12.5}",
        "AMPS-Inf-Seq", seq.completion_s, seq.dollars
    );
    println!(
        "{:<22} {:>12.2} {:>12.5}",
        "AMPS-Inf (parallel)", par.completion_s, par.dollars
    );

    println!(
        "\nAMPS-Inf-Seq beats BATCH on both axes at the same batching\n\
         policy; parallel invocation then collapses the completion time\n\
         at almost unchanged cost — the paper's Fig. 13 shape."
    );

    // A parallel 10-image batch for the larger models (paper Table 5).
    println!("\nten parallel single-image requests, per model:");
    println!("{:<14} {:>10} {:>12}", "model", "time (s)", "cost ($)");
    for model in [zoo::resnet50(), zoo::inception_v3(), zoo::xception()] {
        let plan = Optimizer::new(cfg.clone()).optimize(&model).unwrap().plan;
        let coord = Coordinator::new(cfg.clone());
        let mut platform = coord.platform();
        let dep = coord.deploy(&mut platform, &model, &plan).unwrap();
        let report = coord.serve_parallel(&mut platform, &dep, 10, 0.0);
        let dollars = report.dollars + platform.settle_storage(report.completion_s);
        println!(
            "{:<14} {:>10.2} {:>12.5}",
            model.name, report.completion_s, dollars
        );
    }
}
